//! SQL DDL emission.
//!
//! Section 5 of the paper: *"for relational systems ... \[schemas\] can be
//! rendered as DDL statements, which include the respective constraints such
//! as keys, foreign keys, domain constraints"*. This module renders a whole
//! [`Catalog`] as a deterministic DDL script — the enforcement artefact
//! KGModel deploys to a production relational system.

use crate::catalog::{Catalog, ForeignKey, TableSchema};
use kgm_common::ValueType;

fn sql_type(ty: ValueType) -> &'static str {
    match ty {
        ValueType::Bool => "BOOLEAN",
        ValueType::Int => "BIGINT",
        ValueType::Float => "DOUBLE PRECISION",
        ValueType::Str => "VARCHAR",
        ValueType::Date => "DATE",
        ValueType::Oid => "BIGINT",
    }
}

fn quote_ident(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\"\""))
}

/// Render one `CREATE TABLE` statement.
pub fn create_table_sql(schema: &TableSchema) -> String {
    let mut lines: Vec<String> = Vec::new();
    for c in &schema.columns {
        let mut line = format!("  {} {}", quote_ident(&c.name), sql_type(c.ty));
        if c.not_null {
            line.push_str(" NOT NULL");
        }
        if c.unique {
            line.push_str(" UNIQUE");
        }
        lines.push(line);
    }
    if !schema.primary_key.is_empty() {
        let cols: Vec<String> = schema.primary_key.iter().map(|c| quote_ident(c)).collect();
        lines.push(format!("  PRIMARY KEY ({})", cols.join(", ")));
    }
    format!(
        "CREATE TABLE {} (\n{}\n);",
        quote_ident(&schema.name),
        lines.join(",\n")
    )
}

/// Render one `ALTER TABLE ... ADD CONSTRAINT ... FOREIGN KEY` statement.
pub fn foreign_key_sql(fk: &ForeignKey) -> String {
    let cols: Vec<String> = fk.columns.iter().map(|c| quote_ident(c)).collect();
    let refs: Vec<String> = fk.ref_columns.iter().map(|c| quote_ident(c)).collect();
    format!(
        "ALTER TABLE {} ADD CONSTRAINT {} FOREIGN KEY ({}) REFERENCES {} ({});",
        quote_ident(&fk.table),
        quote_ident(&fk.name),
        cols.join(", "),
        quote_ident(&fk.ref_table),
        refs.join(", ")
    )
}

/// Render the full catalog as a DDL script: tables in name order, then all
/// foreign keys (so forward references are legal).
pub fn catalog_sql(catalog: &Catalog) -> String {
    let mut out = String::new();
    for name in catalog.table_names() {
        out.push_str(&create_table_sql(catalog.schema(&name).expect("listed")));
        out.push_str("\n\n");
    }
    let mut fks: Vec<&ForeignKey> = catalog.foreign_keys().iter().collect();
    fks.sort_by(|a, b| a.name.cmp(&b.name));
    for fk in fks {
        out.push_str(&foreign_key_sql(fk));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    #[test]
    fn create_table_renders_constraints() {
        let s = TableSchema::new(
            "business",
            vec![
                Column::new("fiscal_code", ValueType::Str).not_null(),
                Column::new("website", ValueType::Str).unique(),
                Column::new("capital", ValueType::Float),
            ],
        )
        .with_pk(["fiscal_code"]);
        let sql = create_table_sql(&s);
        assert!(sql.contains("CREATE TABLE \"business\""));
        assert!(sql.contains("\"fiscal_code\" VARCHAR NOT NULL"));
        assert!(sql.contains("\"website\" VARCHAR UNIQUE"));
        assert!(sql.contains("\"capital\" DOUBLE PRECISION"));
        assert!(sql.contains("PRIMARY KEY (\"fiscal_code\")"));
    }

    #[test]
    fn foreign_key_renders_multi_column() {
        let fk = ForeignKey {
            name: "fk_share_business".into(),
            table: "share".into(),
            columns: vec!["b_code".into(), "b_year".into()],
            ref_table: "business".into(),
            ref_columns: vec!["code".into(), "year".into()],
        };
        let sql = foreign_key_sql(&fk);
        assert_eq!(
            sql,
            "ALTER TABLE \"share\" ADD CONSTRAINT \"fk_share_business\" FOREIGN KEY (\"b_code\", \"b_year\") REFERENCES \"business\" (\"code\", \"year\");"
        );
    }

    #[test]
    fn catalog_script_orders_tables_before_fks() {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new("b", vec![Column::new("id", ValueType::Int).not_null()])
                .with_pk(["id"]),
        )
        .unwrap();
        c.create_table(
            TableSchema::new(
                "a",
                vec![
                    Column::new("id", ValueType::Int).not_null(),
                    Column::new("b_id", ValueType::Int),
                ],
            )
            .with_pk(["id"]),
        )
        .unwrap();
        c.add_foreign_key(ForeignKey {
            name: "fk_a_b".into(),
            table: "a".into(),
            columns: vec!["b_id".into()],
            ref_table: "b".into(),
            ref_columns: vec!["id".into()],
        })
        .unwrap();
        let script = catalog_sql(&c);
        let pos_a = script.find("CREATE TABLE \"a\"").unwrap();
        let pos_b = script.find("CREATE TABLE \"b\"").unwrap();
        let pos_fk = script.find("ALTER TABLE").unwrap();
        assert!(pos_a < pos_b, "tables in name order");
        assert!(pos_b < pos_fk, "fks after all tables");
    }

    #[test]
    fn identifiers_are_quoted_safely() {
        let s = TableSchema::new("we\"ird", vec![Column::new("c", ValueType::Int)]);
        assert!(create_table_sql(&s).contains("\"we\"\"ird\""));
    }
}
