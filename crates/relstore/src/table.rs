//! Columns and rows of the relational substrate.

use kgm_common::{KgmError, Result, Value, ValueType};

/// A typed column with optional NOT NULL / UNIQUE column constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (a `Field` in the §5.3 relational model).
    pub name: String,
    /// Value domain.
    pub ty: ValueType,
    /// Disallow SQL NULL.
    pub not_null: bool,
    /// Enforce per-table uniqueness of non-null values.
    pub unique: bool,
}

impl Column {
    /// A nullable, non-unique column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
            not_null: false,
            unique: false,
        }
    }

    /// Mark NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Mark UNIQUE.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// Validate one cell against this column's domain.
    pub fn check(&self, value: Option<&Value>) -> Result<()> {
        match value {
            None => {
                if self.not_null {
                    Err(KgmError::Constraint(format!(
                        "column `{}` is NOT NULL",
                        self.name
                    )))
                } else {
                    Ok(())
                }
            }
            Some(v) => {
                let vt = v.value_type();
                // Ints are acceptable wherever floats are expected (numeric
                // widening), mirroring Value's cross-numeric equality.
                let compatible = vt == self.ty
                    || (self.ty == ValueType::Float && vt == ValueType::Int);
                if compatible {
                    Ok(())
                } else {
                    Err(KgmError::Type(format!(
                        "column `{}` expects {}, got {} ({v:?})",
                        self.name, self.ty, vt
                    )))
                }
            }
        }
    }
}

/// A tuple; `None` is SQL NULL.
pub type Row = Vec<Option<Value>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_accepts_matching_types() {
        let c = Column::new("pct", ValueType::Float);
        assert!(c.check(Some(&Value::Float(0.5))).is_ok());
        assert!(c.check(Some(&Value::Int(1))).is_ok(), "ints widen to float");
        assert!(c.check(None).is_ok());
    }

    #[test]
    fn check_rejects_mismatches_and_nulls() {
        let c = Column::new("name", ValueType::Str).not_null();
        assert!(c.check(Some(&Value::Int(3))).is_err());
        assert!(c.check(None).is_err());
    }

    #[test]
    fn int_column_rejects_float() {
        let c = Column::new("n", ValueType::Int);
        assert!(c.check(Some(&Value::Float(0.5))).is_err());
    }
}
