//! # kgm-relstore
//!
//! An in-memory **relational database** — the relational target substrate of
//! KGModel. Section 5.3 of the paper translates super-schemas into relational
//! schemas whose constructs are `Relation`s, `Field`s, `Predicate`s and
//! `ForeignKey`s; Section 5 notes that for relational systems schemas *"can
//! be rendered as DDL statements, which include the respective constraints
//! such as keys, foreign keys, domain constraints"*.
//!
//! This crate provides exactly that target:
//!
//! - a catalog of tables with typed columns, primary keys, NOT NULL /
//!   UNIQUE column constraints and multi-column foreign keys;
//! - constraint-checked inserts and simple equality scans;
//! - SQL DDL emission for the whole catalog (the enforcement artefact the
//!   paper ships to production relational systems).

pub mod catalog;
pub mod ddl;
pub mod table;

pub use catalog::{Catalog, ForeignKey, TableSchema};
pub use table::{Column, Row};
