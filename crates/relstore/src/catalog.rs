//! The relational catalog: table schemas, foreign keys, constraint-checked
//! data, and simple scans.
//!
//! This is the "target relational system" of Section 5.3: the SSST's
//! `Copy.Store*` programs produce [`TableSchema`]s and [`ForeignKey`]s, which
//! the catalog enforces on every insert — keys, uniqueness, NOT NULL, typed
//! domains and referential integrity.

use crate::table::{Column, Row};
use kgm_common::{FxHashMap, KgmError, Result, Value};

/// Schema of one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Relation name.
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Names of the primary-key columns (possibly empty = keyless staging
    /// table).
    pub primary_key: Vec<String>,
}

impl TableSchema {
    /// Create a schema; the primary key may be set later with [`Self::with_pk`].
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
        }
    }

    /// Set the primary key columns.
    pub fn with_pk<I, S>(mut self, pk: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.primary_key = pk.into_iter().map(Into::into).collect();
        self
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    fn validate(&self) -> Result<()> {
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.columns {
            if !seen.insert(&c.name) {
                return Err(KgmError::Schema(format!(
                    "duplicate column `{}` in `{}`",
                    c.name, self.name
                )));
            }
        }
        for k in &self.primary_key {
            if self.column_index(k).is_none() {
                return Err(KgmError::Schema(format!(
                    "primary key column `{k}` missing from `{}`",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

/// A (possibly multi-column) foreign key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Constraint name.
    pub name: String,
    /// Referencing table.
    pub table: String,
    /// Referencing columns, in order.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns, in order (must be the referenced table's PK or a
    /// unique column set; the catalog checks PK).
    pub ref_columns: Vec<String>,
}

struct TableData {
    schema: TableSchema,
    rows: Vec<Row>,
    /// PK tuple → row index.
    pk_index: FxHashMap<Vec<Value>, usize>,
    /// per-unique-column value → row index.
    unique_indexes: FxHashMap<usize, FxHashMap<Value, usize>>,
}

/// A catalog of tables plus data, with full constraint enforcement.
#[derive(Default)]
pub struct Catalog {
    tables: Vec<TableData>,
    by_name: FxHashMap<String, usize>,
    foreign_keys: Vec<ForeignKey>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        schema.validate()?;
        if self.by_name.contains_key(&schema.name) {
            return Err(KgmError::Schema(format!(
                "table `{}` already exists",
                schema.name
            )));
        }
        let unique_indexes = schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.unique)
            .map(|(i, _)| (i, FxHashMap::default()))
            .collect();
        self.by_name.insert(schema.name.clone(), self.tables.len());
        self.tables.push(TableData {
            schema,
            rows: Vec::new(),
            pk_index: FxHashMap::default(),
            unique_indexes,
        });
        Ok(())
    }

    /// Declare a foreign key. Both tables must exist; the referenced columns
    /// must be the referenced table's primary key; existing data must
    /// satisfy it.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        let t = self.table(&fk.table)?;
        for c in &fk.columns {
            if t.schema.column_index(c).is_none() {
                return Err(KgmError::Schema(format!(
                    "fk `{}`: column `{c}` missing from `{}`",
                    fk.name, fk.table
                )));
            }
        }
        let rt = self.table(&fk.ref_table)?;
        if rt.schema.primary_key != fk.ref_columns {
            return Err(KgmError::Schema(format!(
                "fk `{}` must reference the primary key of `{}` (pk = {:?}, got {:?})",
                fk.name, fk.ref_table, rt.schema.primary_key, fk.ref_columns
            )));
        }
        if fk.columns.len() != fk.ref_columns.len() {
            return Err(KgmError::Schema(format!(
                "fk `{}`: column count mismatch",
                fk.name
            )));
        }
        // Validate existing data.
        let rows: Vec<Row> = self.table(&fk.table)?.rows.clone();
        for row in &rows {
            self.check_fk_for_row(&fk, row)?;
        }
        self.foreign_keys.push(fk);
        Ok(())
    }

    fn table(&self, name: &str) -> Result<&TableData> {
        self.by_name
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| KgmError::NotFound(format!("table `{name}`")))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut TableData> {
        let i = *self
            .by_name
            .get(name)
            .ok_or_else(|| KgmError::NotFound(format!("table `{name}`")))?;
        Ok(&mut self.tables[i])
    }

    /// The schema of `name`.
    pub fn schema(&self, name: &str) -> Result<&TableSchema> {
        Ok(&self.table(name)?.schema)
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.by_name.keys().cloned().collect();
        v.sort();
        v
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Foreign keys declared on `table`.
    pub fn foreign_keys_of(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.table == table)
            .collect()
    }

    /// Number of rows in `name`.
    pub fn row_count(&self, name: &str) -> Result<usize> {
        Ok(self.table(name)?.rows.len())
    }

    fn check_fk_for_row(&self, fk: &ForeignKey, row: &Row) -> Result<()> {
        let t = self.table(&fk.table)?;
        let mut key: Vec<Value> = Vec::with_capacity(fk.columns.len());
        for c in &fk.columns {
            let i = t.schema.column_index(c).expect("validated");
            match &row[i] {
                // SQL semantics: any NULL in the FK tuple skips the check.
                None => return Ok(()),
                Some(v) => key.push(v.clone()),
            }
        }
        let rt = self.table(&fk.ref_table)?;
        if rt.pk_index.contains_key(&key) {
            Ok(())
        } else {
            Err(KgmError::Constraint(format!(
                "fk `{}`: {key:?} not present in `{}`",
                fk.name, fk.ref_table
            )))
        }
    }

    /// Insert a full row (one value slot per column, in schema order).
    pub fn insert(&mut self, table: &str, row: Row) -> Result<()> {
        // Phase 1: validations against immutable self.
        {
            let t = self.table(table)?;
            if row.len() != t.schema.columns.len() {
                return Err(KgmError::Schema(format!(
                    "`{table}` expects {} columns, got {}",
                    t.schema.columns.len(),
                    row.len()
                )));
            }
            for (c, v) in t.schema.columns.iter().zip(&row) {
                c.check(v.as_ref())?;
            }
            // PK: all components not null, tuple unique.
            if !t.schema.primary_key.is_empty() {
                let key = pk_of(&t.schema, &row)?;
                if t.pk_index.contains_key(&key) {
                    return Err(KgmError::Constraint(format!(
                        "duplicate primary key {key:?} in `{table}`"
                    )));
                }
            }
            for (&col, index) in &t.unique_indexes {
                if let Some(v) = &row[col] {
                    if index.contains_key(v) {
                        return Err(KgmError::Constraint(format!(
                            "unique column `{}` of `{table}` already contains {v:?}",
                            t.schema.columns[col].name
                        )));
                    }
                }
            }
            for fk in self.foreign_keys_of(table) {
                self.check_fk_for_row(fk, &row)?;
            }
        }
        // Phase 2: commit.
        let t = self.table_mut(table)?;
        let idx = t.rows.len();
        if !t.schema.primary_key.is_empty() {
            let key = pk_of(&t.schema, &row)?;
            t.pk_index.insert(key, idx);
        }
        for (&col, index) in &mut t.unique_indexes {
            if let Some(v) = &row[col] {
                index.insert(v.clone(), idx);
            }
        }
        t.rows.push(row);
        Ok(())
    }

    /// Insert by (column name, value) pairs; unmentioned columns become NULL.
    pub fn insert_named(&mut self, table: &str, values: &[(&str, Value)]) -> Result<()> {
        let schema = self.schema(table)?.clone();
        let mut row: Row = vec![None; schema.columns.len()];
        for (k, v) in values {
            let i = schema.column_index(k).ok_or_else(|| {
                KgmError::NotFound(format!("column `{k}` in `{table}`"))
            })?;
            row[i] = Some(v.clone());
        }
        self.insert(table, row)
    }

    /// All rows of a table (cloned snapshot).
    pub fn scan(&self, table: &str) -> Result<Vec<Row>> {
        Ok(self.table(table)?.rows.clone())
    }

    /// Rows where every `(column, value)` filter matches.
    pub fn select(&self, table: &str, filters: &[(&str, Value)]) -> Result<Vec<Row>> {
        let t = self.table(table)?;
        let resolved: Vec<(usize, &Value)> = filters
            .iter()
            .map(|(k, v)| {
                t.schema
                    .column_index(k)
                    .map(|i| (i, v))
                    .ok_or_else(|| KgmError::NotFound(format!("column `{k}` in `{table}`")))
            })
            .collect::<Result<_>>()?;
        Ok(t.rows
            .iter()
            .filter(|row| {
                resolved
                    .iter()
                    .all(|(i, v)| row[*i].as_ref() == Some(*v))
            })
            .cloned()
            .collect())
    }

    /// Look up one row by primary key.
    pub fn get_by_pk(&self, table: &str, key: &[Value]) -> Result<Option<Row>> {
        let t = self.table(table)?;
        Ok(t.pk_index.get(key).map(|&i| t.rows[i].clone()))
    }
}

fn pk_of(schema: &TableSchema, row: &Row) -> Result<Vec<Value>> {
    schema
        .primary_key
        .iter()
        .map(|k| {
            let i = schema.column_index(k).expect("validated");
            row[i].clone().ok_or_else(|| {
                KgmError::Constraint(format!(
                    "primary key column `{k}` of `{}` is NULL",
                    schema.name
                ))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgm_common::ValueType;

    fn person_schema() -> TableSchema {
        TableSchema::new(
            "person",
            vec![
                Column::new("fiscal_code", ValueType::Str).not_null(),
                Column::new("name", ValueType::Str),
                Column::new("age", ValueType::Int),
            ],
        )
        .with_pk(["fiscal_code"])
    }

    #[test]
    fn create_insert_select() {
        let mut c = Catalog::new();
        c.create_table(person_schema()).unwrap();
        c.insert_named(
            "person",
            &[("fiscal_code", Value::str("A")), ("name", Value::str("Ada"))],
        )
        .unwrap();
        c.insert_named(
            "person",
            &[("fiscal_code", Value::str("B")), ("age", Value::Int(9))],
        )
        .unwrap();
        assert_eq!(c.row_count("person").unwrap(), 2);
        let rows = c.select("person", &[("name", Value::str("Ada"))]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            c.get_by_pk("person", &[Value::str("B")]).unwrap().unwrap()[2],
            Some(Value::Int(9))
        );
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table(person_schema()).unwrap();
        assert!(c.create_table(person_schema()).is_err());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut c = Catalog::new();
        c.create_table(person_schema()).unwrap();
        c.insert_named("person", &[("fiscal_code", Value::str("A"))])
            .unwrap();
        let err = c
            .insert_named("person", &[("fiscal_code", Value::str("A"))])
            .unwrap_err();
        assert!(matches!(err, KgmError::Constraint(_)));
    }

    #[test]
    fn null_pk_rejected() {
        let mut c = Catalog::new();
        c.create_table(person_schema()).unwrap();
        assert!(c.insert_named("person", &[("name", Value::str("x"))]).is_err());
    }

    #[test]
    fn type_checking_on_insert() {
        let mut c = Catalog::new();
        c.create_table(person_schema()).unwrap();
        let err = c
            .insert_named(
                "person",
                &[("fiscal_code", Value::str("A")), ("age", Value::str("old"))],
            )
            .unwrap_err();
        assert!(matches!(err, KgmError::Type(_)));
    }

    #[test]
    fn unique_column_enforced() {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "place",
                vec![
                    Column::new("id", ValueType::Int).not_null(),
                    Column::new("code", ValueType::Str).unique(),
                ],
            )
            .with_pk(["id"]),
        )
        .unwrap();
        c.insert_named("place", &[("id", Value::Int(1)), ("code", Value::str("X"))])
            .unwrap();
        assert!(c
            .insert_named("place", &[("id", Value::Int(2)), ("code", Value::str("X"))])
            .is_err());
        // NULLs never collide.
        c.insert_named("place", &[("id", Value::Int(3))]).unwrap();
        c.insert_named("place", &[("id", Value::Int(4))]).unwrap();
    }

    #[test]
    fn foreign_key_enforced_on_insert() {
        let mut c = Catalog::new();
        c.create_table(person_schema()).unwrap();
        c.create_table(
            TableSchema::new(
                "share",
                vec![
                    Column::new("id", ValueType::Int).not_null(),
                    Column::new("holder", ValueType::Str),
                ],
            )
            .with_pk(["id"]),
        )
        .unwrap();
        c.add_foreign_key(ForeignKey {
            name: "fk_share_holder".into(),
            table: "share".into(),
            columns: vec!["holder".into()],
            ref_table: "person".into(),
            ref_columns: vec!["fiscal_code".into()],
        })
        .unwrap();
        assert!(c
            .insert_named("share", &[("id", Value::Int(1)), ("holder", Value::str("A"))])
            .is_err());
        c.insert_named("person", &[("fiscal_code", Value::str("A"))])
            .unwrap();
        c.insert_named("share", &[("id", Value::Int(1)), ("holder", Value::str("A"))])
            .unwrap();
        // NULL FK is allowed.
        c.insert_named("share", &[("id", Value::Int(2))]).unwrap();
    }

    #[test]
    fn foreign_key_must_reference_pk() {
        let mut c = Catalog::new();
        c.create_table(person_schema()).unwrap();
        c.create_table(
            TableSchema::new("t", vec![Column::new("x", ValueType::Str)]),
        )
        .unwrap();
        let err = c
            .add_foreign_key(ForeignKey {
                name: "bad".into(),
                table: "t".into(),
                columns: vec!["x".into()],
                ref_table: "person".into(),
                ref_columns: vec!["name".into()],
            })
            .unwrap_err();
        assert!(matches!(err, KgmError::Schema(_)));
    }

    #[test]
    fn foreign_key_validates_existing_data() {
        let mut c = Catalog::new();
        c.create_table(person_schema()).unwrap();
        c.create_table(
            TableSchema::new(
                "share",
                vec![
                    Column::new("id", ValueType::Int).not_null(),
                    Column::new("holder", ValueType::Str),
                ],
            )
            .with_pk(["id"]),
        )
        .unwrap();
        c.insert_named("share", &[("id", Value::Int(1)), ("holder", Value::str("Z"))])
            .unwrap();
        assert!(c
            .add_foreign_key(ForeignKey {
                name: "fk".into(),
                table: "share".into(),
                columns: vec!["holder".into()],
                ref_table: "person".into(),
                ref_columns: vec!["fiscal_code".into()],
            })
            .is_err());
    }

    #[test]
    fn schema_validation_rejects_bad_pk_and_dup_columns() {
        let mut c = Catalog::new();
        assert!(c
            .create_table(
                TableSchema::new("t", vec![Column::new("x", ValueType::Int)]).with_pk(["y"]),
            )
            .is_err());
        assert!(c
            .create_table(TableSchema::new(
                "t",
                vec![
                    Column::new("x", ValueType::Int),
                    Column::new("x", ValueType::Str)
                ],
            ))
            .is_err());
    }

    #[test]
    fn wrong_arity_insert_rejected() {
        let mut c = Catalog::new();
        c.create_table(person_schema()).unwrap();
        assert!(c.insert("person", vec![Some(Value::str("A"))]).is_err());
    }
}
