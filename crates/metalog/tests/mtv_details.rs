//! Additional MTV behaviour tests: annotation shapes, scalar pass-through
//! fidelity, multi-path bodies, and the documented unsupported shapes.

use kgm_metalog::{parse_metalog, translate, PgSchema};
use kgm_vadalog::{parse_program, Engine};

fn catalog() -> PgSchema {
    let mut s = PgSchema::new();
    s.declare_node("A", ["p", "q"])
        .declare_node("B", Vec::<String>::new())
        .declare_edge("R", ["w"])
        .declare_edge("S", Vec::<String>::new())
        .declare_edge("OUT", Vec::<String>::new());
    s
}

#[test]
fn generated_source_is_parseable_vadalog() {
    let meta = parse_metalog(
        r#"
        (x: A; p: v)[e: R; w: u](y: B), v > 1, z = u * 2 + v
            -> (x)[o: OUT](y).
        "#,
    )
    .unwrap();
    let out = translate(&meta, &catalog(), "g").unwrap();
    // Re-parse the emitted text independently.
    let reparsed = parse_program(&out.vadalog_source).unwrap();
    assert_eq!(reparsed.rules.len(), out.program.rules.len());
    Engine::new(reparsed).unwrap();
}

#[test]
fn multiple_path_patterns_share_variables() {
    // Two body paths joined on `b` — the families-program shape.
    let meta = parse_metalog(
        r#"
        (x: A)[: R](b: B), (y: A)[: R](b: B), x != y -> (x)[o: OUT](y).
        "#,
    )
    .unwrap();
    let out = translate(&meta, &catalog(), "g").unwrap();
    let rule = &out.program.rules[0];
    // B(b) appears twice textually but binds one variable: the two R atoms
    // must share their target variable.
    let src = &out.vadalog_source;
    assert!(src.contains("R(_, x, b"), "{src}");
    assert!(src.contains("R(_, y, b"), "{src}");
    assert!(rule.body.len() >= 4);
}

#[test]
fn annotations_cover_exactly_the_used_labels() {
    let meta = parse_metalog("(x: A)[: R](y: B) -> (x)[o: OUT](y).").unwrap();
    let out = translate(&meta, &catalog(), "g").unwrap();
    let inputs: Vec<&str> = out
        .program
        .inputs
        .iter()
        .map(|b| b.predicate.as_str())
        .collect();
    assert_eq!(inputs, vec!["A", "B", "R"]);
    let outputs: Vec<&str> = out
        .program
        .outputs
        .iter()
        .map(|o| o.predicate.as_str())
        .collect();
    assert_eq!(outputs, vec!["OUT"]);
    // Display strings match the paper's annotation shape.
    assert_eq!(out.program.inputs[0].display_query(), "(n:A) return n");
    assert_eq!(
        out.program.inputs[2].display_query(),
        "(a)-[e:R]->(b) return (e,a,b)"
    );
}

#[test]
fn nullable_inside_concat_is_the_documented_unsupported_shape() {
    let meta = parse_metalog("(x: A) ([: R]* . [: S]) (y: B) -> (x)[o: OUT](y).").unwrap();
    let err = translate(&meta, &catalog(), "g").unwrap_err();
    assert!(err.to_string().contains("nullable"), "{err}");
}

#[test]
fn star_of_star_collapses() {
    let meta = parse_metalog("(x: A) (([: R])*)* (y: B) -> (x)[o: OUT](y).").unwrap();
    let out = translate(&meta, &catalog(), "g").unwrap();
    // Exactly one transitive-closure predicate is introduced.
    let tc_defs = out
        .vadalog_source
        .lines()
        .filter(|l| l.contains("-> ml_tc_1(h, q)."))
        .count();
    assert_eq!(tc_defs, 1, "{}", out.vadalog_source);
    assert!(!out.vadalog_source.contains("ml_tc_2"));
    Engine::new(out.program).unwrap();
}

#[test]
fn alternation_of_stars_becomes_star_of_alternation() {
    // (R* | S*)* ≡ (R | S)*: ε-elimination inside the star.
    let meta =
        parse_metalog("(x: A) (([: R]* | [: S]*))* (y: B) -> (x)[o: OUT](y).").unwrap();
    let out = translate(&meta, &catalog(), "g").unwrap();
    // One β with two base rules through an α or direct alternation.
    assert!(out.vadalog_source.contains("ml_tc_1"), "{}", out.vadalog_source);
    Engine::new(out.program).unwrap();
}

#[test]
fn edge_property_constants_are_allowed_under_composites() {
    // Constants (unlike named variables) are fine under `|` and `*`.
    let meta = parse_metalog(
        r#"(x: A) ([: R; w: 3] | [: S]) (y: B) -> (x)[o: OUT](y)."#,
    )
    .unwrap();
    let out = translate(&meta, &catalog(), "g").unwrap();
    assert!(out.vadalog_source.contains("R(_, h, q, 3)"), "{}", out.vadalog_source);
}

#[test]
fn negated_node_atom_translates_to_not() {
    let meta = parse_metalog("(x: A), not (x: B) -> (x)[o: OUT](x).").unwrap();
    let out = translate(&meta, &catalog(), "g").unwrap();
    assert!(out.vadalog_source.contains("not B(x)"), "{}", out.vadalog_source);
}

#[test]
fn anonymous_source_node_gets_a_fresh_variable() {
    let meta = parse_metalog("(: A)[: R](y: B) -> (y)[o: OUT](y).").unwrap();
    let out = translate(&meta, &catalog(), "g").unwrap();
    assert!(
        out.vadalog_source.contains("A(mlv_"),
        "{}",
        out.vadalog_source
    );
}
