//! Golden snapshots of the MTV compiler's output: the exact Vadalog source
//! emitted for representative MetaLog programs is pinned under
//! `tests/golden/`. A diff here means the compilation scheme changed —
//! review it, then re-bless with `KGM_BLESS=1 cargo test -p kgm-metalog`.
//! CI runs with `KGM_GOLDEN_FROZEN=1`, which also treats a missing golden
//! as a failure.

use kgm_metalog::{parse_metalog, translate, PgSchema};
use kgm_runtime::snapshot::assert_snapshot;

fn golden(name: &str) -> String {
    format!(
        "{}/tests/golden/{name}.vadalog",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn catalog() -> PgSchema {
    let mut s = PgSchema::new();
    s.declare_node("A", ["p", "q"])
        .declare_node("B", Vec::<String>::new())
        .declare_edge("R", ["w"])
        .declare_edge("S", Vec::<String>::new())
        .declare_edge("OUT", Vec::<String>::new());
    s
}

fn compile(src: &str) -> String {
    let meta = parse_metalog(src).unwrap();
    translate(&meta, &catalog(), "g").unwrap().vadalog_source
}

/// Single edge pattern with property bindings, a comparison, and scalar
/// arithmetic — the minimal "everything in one rule" compilation.
#[test]
fn golden_edge_with_conditions() {
    let out = compile(
        r#"
        (x: A; p: v)[e: R; w: u](y: B), v > 1, z = u * 2 + v
            -> (x)[o: OUT](y).
        "#,
    );
    assert_snapshot(golden("edge_with_conditions"), &out);
}

/// Kleene star over a single edge label: compiles to the auxiliary
/// reachability predicate with base + step rules (the paper's §4 regular
/// path translation).
#[test]
fn golden_kleene_star_reachability() {
    let out = compile("(x: A) ([: R])* (y: A) -> (x)[e: OUT](y).");
    assert_snapshot(golden("kleene_star_reachability"), &out);
}

/// Alternation of an inverse and a forward edge under a star — both
/// traversal directions must show in the generated step rules.
#[test]
fn golden_star_over_inverse_alternation() {
    let out = compile("(x: A) ([: R]- | [: S])* (y: B) -> (x)[o: OUT](y).");
    assert_snapshot(golden("star_over_inverse_alternation"), &out);
}

/// Two path patterns joined on a shared node variable (the families-program
/// shape) — exercises variable unification across patterns.
#[test]
fn golden_multi_path_join() {
    let out = compile(
        r#"
        (x: A)[: R](b: B), (y: A)[: R](b: B), x != y -> (x)[o: OUT](y).
        "#,
    );
    assert_snapshot(golden("multi_path_join"), &out);
}
