//! The label→properties catalog MTV translates against.
//!
//! The PG-to-relational mapping of Section 4, step (1), turns an `L`-labelled
//! node into a fact `L(c_x, c_{f_1}, …, c_{f_n})` with **one constant per
//! property of `L`** — so the translator must know, for every label, the
//! ordered property list. In KGModel this information comes from the graph
//! schema (the super-schema or a model schema); [`PgSchema`] is that catalog.

use kgm_common::{KgmError, Result};
use std::collections::BTreeMap;

/// Ordered property lists per node and edge label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PgSchema {
    nodes: BTreeMap<String, Vec<String>>,
    edges: BTreeMap<String, Vec<String>>,
}

impl PgSchema {
    /// Empty catalog.
    pub fn new() -> Self {
        PgSchema::default()
    }

    /// Declare a node label with its ordered properties.
    pub fn declare_node<I, S>(&mut self, label: impl Into<String>, props: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.nodes
            .insert(label.into(), props.into_iter().map(Into::into).collect());
        self
    }

    /// Declare an edge label with its ordered properties.
    pub fn declare_edge<I, S>(&mut self, label: impl Into<String>, props: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.edges
            .insert(label.into(), props.into_iter().map(Into::into).collect());
        self
    }

    /// Properties of a node label.
    pub fn node_props(&self, label: &str) -> Result<&[String]> {
        self.nodes
            .get(label)
            .map(Vec::as_slice)
            .ok_or_else(|| KgmError::NotFound(format!("node label `{label}` in PG schema")))
    }

    /// Properties of an edge label.
    pub fn edge_props(&self, label: &str) -> Result<&[String]> {
        self.edges
            .get(label)
            .map(Vec::as_slice)
            .ok_or_else(|| KgmError::NotFound(format!("edge label `{label}` in PG schema")))
    }

    /// True if the node label is declared.
    pub fn has_node(&self, label: &str) -> bool {
        self.nodes.contains_key(label)
    }

    /// True if the edge label is declared.
    pub fn has_edge(&self, label: &str) -> bool {
        self.edges.contains_key(label)
    }

    /// All declared node labels, sorted.
    pub fn node_labels(&self) -> Vec<&str> {
        self.nodes.keys().map(String::as_str).collect()
    }

    /// All declared edge labels, sorted.
    pub fn edge_labels(&self) -> Vec<&str> {
        self.edges.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut s = PgSchema::new();
        s.declare_node("Business", ["fiscalCode", "businessName"])
            .declare_edge("OWNS", ["percentage"]);
        assert_eq!(s.node_props("Business").unwrap(), ["fiscalCode", "businessName"]);
        assert_eq!(s.edge_props("OWNS").unwrap(), ["percentage"]);
        assert!(s.node_props("Missing").is_err());
        assert!(s.has_node("Business"));
        assert!(!s.has_edge("CONTROLS"));
    }

    #[test]
    fn labels_are_sorted() {
        let mut s = PgSchema::new();
        s.declare_node("Z", Vec::<String>::new());
        s.declare_node("A", Vec::<String>::new());
        assert_eq!(s.node_labels(), vec!["A", "Z"]);
    }
}
