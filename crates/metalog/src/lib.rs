//! # kgm-metalog
//!
//! **MetaLog** — the language KGModel proposes for intensional components
//! (Section 4 of the paper) — and **MTV**, the MetaLog-to-Vadalog compiler.
//!
//! MetaLog combines Warded Datalog± with graph pattern matching: rules are
//! existential rules whose bodies are conjunctions of *PG node atoms*
//! `(x : L; k₁ : t₁, …)`, *path patterns* (regular expressions over PG edge
//! atoms with concatenation `.`, alternation `|`, inverse `-` and Kleene
//! star `*`), conditions and expressions; heads are conjunctions of PG node
//! atoms and simple edge patterns.
//!
//! The MTV compiler implements the paper's three translation steps:
//!
//! 1. **PG-to-relational mapping** — every node label `L` becomes a
//!    predicate `L(oid, f₁, …, fₙ)` and every edge label `Lₑ` a predicate
//!    `Lₑ(oid, from, to, f₁, …, fₘ)`, with `@input` annotations binding them
//!    to the source graph (Example 4.4);
//! 2. **PG atom translation** — node/edge atoms become relational atoms
//!    padded with anonymous variables for unmentioned properties;
//! 3. **path-pattern resolution** — concatenation inlines with fresh
//!    midpoint variables, inverse swaps endpoints, alternation and star
//!    introduce fresh `α`/`β` predicates defined by exactly the auxiliary
//!    rules printed in Section 4.
//!
//! The tractability rule is enforced: the Kleene star is only accepted in
//! non-recursive programs (such programs reduce to Piecewise Linear
//! Datalog±).
//!
//! Two deliberate, documented syntax-level substitutions with respect to the
//! paper (see DESIGN.md): existential linker Skolem functors are written as
//! body assignments `c = skolem("skC", x)` rather than `∃_sk(x) c` binders
//! (identical semantics), and the `pack`/`*`-unpack operator of Example 6.2
//! is replaced by statically expanded attribute lists in view generation
//! (the paper also derives views from a static analysis of Σ).

//! ```
//! use kgm_metalog::{parse_metalog, translate, PgSchema};
//!
//! let mut catalog = PgSchema::new();
//! catalog.declare_node("Business", ["name"])
//!        .declare_edge("OWNS", ["percentage"])
//!        .declare_edge("CONTROLS", Vec::<String>::new());
//! let meta = parse_metalog(
//!     "(x: Business) -> (x)[c: CONTROLS](x).",
//! ).unwrap();
//! let out = translate(&meta, &catalog, "kg").unwrap();
//! assert!(out.vadalog_source.contains("Business(x, _) -> CONTROLS("));
//! ```

pub mod ast;
pub mod mtv;
pub mod parser;
pub mod schema;

pub use ast::{EdgeAtom, MetaProgram, MetaRule, NodeAtom, PathRegex, TermLike};
pub use mtv::{translate, MtvOutput};
pub use parser::parse_metalog;
pub use schema::PgSchema;
