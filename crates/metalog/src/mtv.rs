//! MTV — the MetaLog-to-Vadalog compiler (Section 4 of the paper).
//!
//! The compiler emits a complete Vadalog **source text** (so the generated
//! program can be inspected exactly like Example 4.4 prints it) and the
//! parsed [`kgm_vadalog::Program`] ready for the engine:
//!
//! - node/edge atoms become relational atoms padded to the schema arity with
//!   anonymous variables (steps (1)–(2));
//! - path patterns are resolved inductively (step (3)): inverse swaps
//!   endpoints, concatenation inlines with fresh midpoints, alternation and
//!   star introduce fresh `ml_alt`/`ml_tc` predicates defined by the exact
//!   auxiliary rules printed in the paper;
//! - `@input` bindings for every body label and `@output` bindings for every
//!   head label are generated against the given source graph name;
//! - the tractability rule is enforced: star in a recursive program is
//!   rejected (Section 4, "to guarantee decidability and tractability").
//!
//! Since the paper's `∗`-translation defines the auxiliary `β` predicate by
//! one and two-or-more step rules, the zero-step case of the star (`ε`) is
//! compiled as an additional rule variant in which the two endpoint node
//! atoms are required to bind the same OID — preserving the reflexive
//! semi-path semantics of Section 4.

use crate::ast::{
    EdgeAtom, MetaBodyElem, MetaProgram, MetaRule, NodeAtom, PathPattern, PathRegex,
};
use crate::schema::PgSchema;
use kgm_common::{FxHashMap, FxHashSet, KgmError, Result, Value};
use kgm_runtime::telemetry;
use kgm_vadalog::{parse_program, Program};

use crate::ast::TermLike;

/// The result of an MTV compilation.
#[derive(Debug, Clone)]
pub struct MtvOutput {
    /// The generated Vadalog program text (rules + auxiliary rules +
    /// annotations).
    pub vadalog_source: String,
    /// The parsed program, ready for `kgm_vadalog::Engine`.
    pub program: Program,
}

struct Gen<'a> {
    schema: &'a PgSchema,
    graph: &'a str,
    fresh: usize,
    aux_rules: Vec<String>,
    aux_count: usize,
}

impl<'a> Gen<'a> {
    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("mlv_{}", self.fresh)
    }

    fn fresh_pred(&mut self, kind: &str) -> String {
        self.aux_count += 1;
        format!("ml_{kind}_{}", self.aux_count)
    }
}

fn literal(v: &Value) -> Result<String> {
    Ok(match v {
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Value::Date(d) => d.to_string(),
        Value::Oid(_) => {
            return Err(KgmError::Translation(
                "OID constants cannot appear in MetaLog source".to_string(),
            ))
        }
    })
}

fn term_text(t: &TermLike) -> Result<String> {
    match t {
        TermLike::Var(v) => Ok(v.clone()),
        TermLike::Const(c) => literal(c),
    }
}

/// Render a node atom as a relational atom `L(id, p₁, …, pₙ)`.
fn node_atom_text(gen: &Gen, atom: &NodeAtom, id_var: &str) -> Result<String> {
    let label = atom
        .label
        .as_ref()
        .expect("caller checks labelled node atoms");
    let schema_props = gen.schema.node_props(label)?;
    let mut args = vec![id_var.to_string()];
    for p in schema_props {
        match atom.props.iter().find(|(k, _)| k == p) {
            Some((_, t)) => args.push(term_text(t)?),
            None => args.push("_".to_string()),
        }
    }
    for (k, _) in &atom.props {
        if !schema_props.contains(k) {
            return Err(KgmError::Translation(format!(
                "property `{k}` is not declared for node label `{label}`"
            )));
        }
    }
    Ok(format!("{}({})", label, args.join(", ")))
}

/// Render an edge atom as `Lₑ(id, from, to, p₁, …, pₘ)`.
fn edge_atom_text(
    gen: &mut Gen,
    atom: &EdgeAtom,
    from: &str,
    to: &str,
    allow_named: bool,
) -> Result<String> {
    let label = atom.label.as_ref().ok_or_else(|| {
        KgmError::Translation("edge atoms must carry a label".to_string())
    })?;
    if !allow_named {
        if atom.var.is_some() {
            return Err(KgmError::Translation(format!(
                "edge atom `[{label}]` under `*`/`|` cannot bind a named identifier"
            )));
        }
        if atom.props.iter().any(|(_, t)| matches!(t, TermLike::Var(_))) {
            return Err(KgmError::Translation(format!(
                "edge atom `[{label}]` under `*`/`|` cannot bind named property variables"
            )));
        }
    }
    let schema_props = gen.schema.edge_props(label)?;
    let id = atom.var.clone().unwrap_or_else(|| "_".to_string());
    let mut args = vec![id, from.to_string(), to.to_string()];
    for p in schema_props {
        match atom.props.iter().find(|(k, _)| k == p) {
            Some((_, t)) => args.push(term_text(t)?),
            None => args.push("_".to_string()),
        }
    }
    for (k, _) in &atom.props {
        if !schema_props.contains(k) {
            return Err(KgmError::Translation(format!(
                "property `{k}` is not declared for edge label `{label}`"
            )));
        }
    }
    Ok(format!("{}({})", label, args.join(", ")))
}

/// Remove ε from a nullable regex without changing its star:
/// `(R)* = (strip(R))*` where `strip` is ε-elimination.
fn strip_nullable(r: &PathRegex) -> PathRegex {
    match r {
        PathRegex::Edge(e) => PathRegex::Edge(e.clone()),
        PathRegex::Inverse(i) => PathRegex::Inverse(Box::new(strip_nullable(i))),
        PathRegex::Star(i) => strip_nullable(i),
        PathRegex::Alt(xs) => PathRegex::Alt(
            xs.iter()
                .map(|x| if x.nullable() { strip_nullable(x) } else { x.clone() })
                .collect(),
        ),
        PathRegex::Concat(xs) => {
            if r.nullable() {
                // (a* · b*)* ≡ (a | b)*: an all-nullable concatenation under a
                // star collapses to the alternation of the stripped parts.
                PathRegex::Alt(xs.iter().map(strip_nullable).collect())
            } else {
                PathRegex::Concat(xs.clone())
            }
        }
    }
}

/// Translate `from R to` into a conjunction of Vadalog atoms, creating
/// auxiliary predicates/rules for `|` and `*` (paper step (3)).
/// `top_level` permits named variable bindings on simple edges.
fn regex_atoms(
    gen: &mut Gen,
    regex: &PathRegex,
    from: &str,
    to: &str,
    top_level: bool,
) -> Result<Vec<String>> {
    match regex {
        PathRegex::Edge(e) => Ok(vec![edge_atom_text(gen, e, from, to, top_level)?]),
        PathRegex::Inverse(i) => regex_atoms(gen, i, to, from, top_level),
        PathRegex::Concat(parts) => {
            let mut atoms = Vec::new();
            let mut cur = from.to_string();
            for (i, p) in parts.iter().enumerate() {
                let next = if i + 1 == parts.len() {
                    to.to_string()
                } else {
                    gen.fresh_var()
                };
                if p.nullable() {
                    return Err(KgmError::Translation(
                        "nullable sub-pattern inside a concatenation is not supported; \
                         lift the `*` to the whole group"
                            .to_string(),
                    ));
                }
                atoms.extend(regex_atoms(gen, p, &cur, &next, top_level)?);
                cur = next;
            }
            Ok(atoms)
        }
        PathRegex::Alt(alts) => {
            // α(h, q) defined by one rule per alternative (paper step (3)).
            let alpha = gen.fresh_pred("alt");
            for a in alts {
                if a.nullable() {
                    return Err(KgmError::Translation(
                        "nullable alternative inside `|` is not supported; \
                         lift the `*` to the whole group"
                            .to_string(),
                    ));
                }
                let atoms = regex_atoms(gen, a, "h", "q", false)?;
                gen.aux_rules
                    .push(format!("{} -> {alpha}(h, q).", atoms.join(", ")));
            }
            Ok(vec![format!("{alpha}({from}, {to})")])
        }
        PathRegex::Star(inner) => {
            // β(h, q) by the two rules of the paper: base and extension.
            let core = if inner.nullable() {
                strip_nullable(inner)
            } else {
                (**inner).clone()
            };
            let beta = gen.fresh_pred("tc");
            let base = regex_atoms(gen, &core, "h", "q", false)?;
            gen.aux_rules
                .push(format!("{} -> {beta}(h, q).", base.join(", ")));
            let step = regex_atoms(gen, &core, "h", "q", false)?;
            gen.aux_rules.push(format!(
                "{beta}(v, h), {} -> {beta}(v, q).",
                step.join(", ")
            ));
            Ok(vec![format!("{beta}({from}, {to})")])
        }
    }
}

/// One body path pattern, translated into conjunction *variants*: the
/// cartesian expansion of the zero-step (ε) cases of nullable segments.
/// Each variant is a list of conjunct strings.
fn path_variants(gen: &mut Gen, path: &PathPattern) -> Result<Vec<Vec<String>>> {
    // Node variables: named or fresh.
    let mut node_vars: Vec<String> = Vec::new();
    let mut node_atoms: Vec<Option<String>> = Vec::new();
    let all_nodes: Vec<&NodeAtom> = std::iter::once(&path.src)
        .chain(path.segments.iter().map(|(_, n)| n))
        .collect();
    for n in &all_nodes {
        let var = n.var.clone().unwrap_or_else(|| gen.fresh_var());
        if n.label.is_none() && !n.props.is_empty() {
            return Err(KgmError::Translation(
                "node atoms with properties must carry a label".to_string(),
            ));
        }
        let atom = if n.label.is_some() {
            Some(node_atom_text(gen, n, &var)?)
        } else {
            None
        };
        node_vars.push(var);
        node_atoms.push(atom);
    }
    let mut variants: Vec<Vec<String>> = vec![node_atoms.iter().flatten().cloned().collect()];
    for (i, (regex, _)) in path.segments.iter().enumerate() {
        let from = node_vars[i].clone();
        let to = node_vars[i + 1].clone();
        let atoms = regex_atoms(gen, regex, &from, &to, true)?;
        let nullable = regex.nullable();
        let mut next: Vec<Vec<String>> = Vec::new();
        for v in &variants {
            let mut with = v.clone();
            with.extend(atoms.iter().cloned());
            next.push(with);
            if nullable {
                // ε case: both endpoints must denote the same node.
                if all_nodes[i].label.is_none() || all_nodes[i + 1].label.is_none() {
                    return Err(KgmError::Translation(
                        "a nullable path segment requires labelled endpoints".to_string(),
                    ));
                }
                let mut eps = v.clone();
                eps.push(format!("{from} == {to}"));
                next.push(eps);
            }
        }
        variants = next;
    }
    Ok(variants)
}

/// Translate a head path pattern into head atom strings. Existential
/// identifiers (unnamed node/edge ids) become fresh head-only variables,
/// i.e. labelled nulls.
fn head_atoms(gen: &mut Gen, path: &PathPattern) -> Result<Vec<String>> {
    let mut out = Vec::new();
    let mut node_vars: Vec<String> = Vec::new();
    let all_nodes: Vec<&NodeAtom> = std::iter::once(&path.src)
        .chain(path.segments.iter().map(|(_, n)| n))
        .collect();
    for n in &all_nodes {
        let var = n.var.clone().unwrap_or_else(|| gen.fresh_var());
        if let Some(_l) = &n.label {
            out.push(node_atom_text(gen, n, &var)?);
        }
        node_vars.push(var);
    }
    for (i, (regex, _)) in path.segments.iter().enumerate() {
        let (edge, inverted) = match regex {
            PathRegex::Edge(e) => (e, false),
            PathRegex::Inverse(inner) => match inner.as_ref() {
                PathRegex::Edge(e) => (e, true),
                _ => {
                    return Err(KgmError::Translation(
                        "head edges must be simple atoms".to_string(),
                    ))
                }
            },
            _ => {
                return Err(KgmError::Translation(
                    "head edges must be simple atoms".to_string(),
                ))
            }
        };
        let (from, to) = if inverted {
            (node_vars[i + 1].clone(), node_vars[i].clone())
        } else {
            (node_vars[i].clone(), node_vars[i + 1].clone())
        };
        // In the head an unnamed edge id is an existential (paper: ∃c).
        let mut e = edge.clone();
        if e.var.is_none() {
            e.var = Some(gen.fresh_var());
        }
        out.push(edge_atom_text(gen, &e, &from, &to, true)?);
    }
    Ok(out)
}

/// Is the MetaLog program recursive — a cycle in the rule dependency graph?
///
/// Rule `A` depends on rule `B` when some head atom of `B` can feed a body
/// atom of `A`: same label *and* compatible `schemaOID` tags. The tag of a
/// node atom is its constant `schemaOID` property (if written inline); the
/// tag of an edge atom is inherited from a tagged endpoint node atom of the
/// same rule. Tags make the §5 mapping programs — which read one schema OID
/// and write another through the *same* super-construct labels — correctly
/// non-recursive, exactly as the paper treats Example 5.1.
#[allow(clippy::collapsible_match, clippy::needless_range_loop)]
fn is_recursive(meta: &MetaProgram) -> bool {
    type Tagged = (String, Option<i64>);

    fn tag_of_node(n: &crate::ast::NodeAtom) -> Option<i64> {
        n.props.iter().find_map(|(k, t)| {
            if k == "schemaOID" {
                if let TermLike::Const(Value::Int(i)) = t {
                    return Some(*i);
                }
            }
            None
        })
    }

    /// Collect (label, tag) atoms of one path pattern, resolving edge tags
    /// through endpoint variables.
    fn collect_path(
        p: &PathPattern,
        var_tags: &FxHashMap<String, i64>,
        out: &mut Vec<Tagged>,
    ) {
        let node_tag = |n: &crate::ast::NodeAtom| -> Option<i64> {
            tag_of_node(n).or_else(|| {
                n.var
                    .as_ref()
                    .and_then(|v| var_tags.get(v).copied())
            })
        };
        if let Some(l) = &p.src.label {
            out.push((l.clone(), node_tag(&p.src)));
        }
        let mut prev_tag = node_tag(&p.src);
        for (regex, n) in &p.segments {
            let next_tag = node_tag(n);
            let edge_tag = prev_tag.or(next_tag);
            for e in regex.edge_atoms() {
                if let Some(l) = &e.label {
                    out.push((l.clone(), edge_tag));
                }
            }
            if let Some(l) = &n.label {
                out.push((l.clone(), next_tag));
            }
            prev_tag = next_tag;
        }
    }

    /// Variable → tag map from every labelled node atom in the rule.
    fn var_tags(r: &MetaRule) -> FxHashMap<String, i64> {
        let mut m = FxHashMap::default();
        let mut visit = |p: &PathPattern| {
            let mut add = |n: &crate::ast::NodeAtom| {
                if let (Some(v), Some(t)) = (&n.var, tag_of_node(n)) {
                    m.insert(v.clone(), t);
                }
            };
            add(&p.src);
            for (_, n) in &p.segments {
                add(n);
            }
        };
        for b in &r.body {
            if let MetaBodyElem::Path(p) = b {
                visit(p);
            }
        }
        for h in &r.head {
            visit(h);
        }
        m
    }

    let n = meta.rules.len();
    let mut bodies: Vec<Vec<Tagged>> = Vec::with_capacity(n);
    let mut heads: Vec<Vec<Tagged>> = Vec::with_capacity(n);
    for r in &meta.rules {
        let tags = var_tags(r);
        let mut b = Vec::new();
        for e in &r.body {
            match e {
                MetaBodyElem::Path(p) => collect_path(p, &tags, &mut b),
                MetaBodyElem::NegatedNode(na) => {
                    if let Some(l) = &na.label {
                        b.push((l.clone(), tag_of_node(na)));
                    }
                }
                MetaBodyElem::Scalar(_) => {}
            }
        }
        let mut h = Vec::new();
        for hp in &r.head {
            collect_path(hp, &tags, &mut h);
        }
        bodies.push(b);
        heads.push(h);
    }
    let compatible = |a: &Tagged, b: &Tagged| {
        a.0 == b.0
            && match (a.1, b.1) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            }
    };
    // adj[i] = rules whose body can consume rule i's heads.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if heads[i]
                .iter()
                .any(|h| bodies[j].iter().any(|b| compatible(h, b)))
            {
                adj[i].push(j);
            }
        }
    }
    // Cycle detection over the rule graph.
    let mut color = vec![0u8; n]; // 0 white, 1 grey, 2 black
    fn dfs(v: usize, adj: &[Vec<usize>], color: &mut [u8]) -> bool {
        color[v] = 1;
        for &w in &adj[v] {
            match color[w] {
                1 => return true,
                0 => {
                    if dfs(w, adj, color) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        color[v] = 2;
        false
    }
    (0..n).any(|v| color[v] == 0 && dfs(v, &adj, &mut color))
}

/// Compile a MetaLog program to Vadalog (the MTV tool of Section 2.2).
///
/// `graph` is the registered name of the source property graph that the
/// generated `@input` annotations will read from.
pub fn translate(meta: &MetaProgram, schema: &PgSchema, graph: &str) -> Result<MtvOutput> {
    let root_span = kgm_runtime::span!("mtv.translate", "{} rules", meta.rules.len());
    // Tractability rule (Section 4): star only in non-recursive programs.
    {
        let _s = kgm_runtime::span!("mtv.tractability");
        let uses_star = meta.rules.iter().any(|r| {
            r.body.iter().any(|b| match b {
                MetaBodyElem::Path(p) => {
                    p.segments.iter().any(|(regex, _)| regex.has_star())
                }
                _ => false,
            })
        });
        if uses_star && is_recursive(meta) {
            return Err(KgmError::Analysis(
                "transitive closure (Kleene star) is only allowed in non-recursive \
                 MetaLog programs (Section 4 tractability rule)"
                    .to_string(),
            ));
        }
    }

    let mut gen = Gen {
        schema,
        graph,
        fresh: 0,
        aux_rules: Vec::new(),
        aux_count: 0,
    };
    let mut main_rules: Vec<String> = Vec::new();

    for (ri, rule) in meta.rules.iter().enumerate() {
        let rule_span = kgm_runtime::span!("mtv.rule", "#{ri}");
        let variants_before = main_rules.len();
        let aux_before = gen.aux_rules.len();
        translate_rule(&mut gen, rule, &mut main_rules)?;
        if rule_span.is_active() {
            telemetry::record("variants", (main_rules.len() - variants_before) as i64);
            telemetry::record("aux_rules", (gen.aux_rules.len() - aux_before) as i64);
        }
    }

    // Annotations: body labels get @input, head labels @output.
    let annotation_span = kgm_runtime::span!("mtv.annotations");
    let mut body_node_labels: FxHashSet<String> = FxHashSet::default();
    let mut body_edge_labels: FxHashSet<String> = FxHashSet::default();
    let mut head_labels: FxHashSet<String> = FxHashSet::default();
    for r in &meta.rules {
        for b in &r.body {
            match b {
                MetaBodyElem::Path(p) => {
                    if let Some(l) = &p.src.label {
                        body_node_labels.insert(l.clone());
                    }
                    for (regex, n) in &p.segments {
                        if let Some(l) = &n.label {
                            body_node_labels.insert(l.clone());
                        }
                        for e in regex.edge_atoms() {
                            if let Some(l) = &e.label {
                                body_edge_labels.insert(l.clone());
                            }
                        }
                    }
                }
                MetaBodyElem::NegatedNode(n) => {
                    if let Some(l) = &n.label {
                        body_node_labels.insert(l.clone());
                    }
                }
                MetaBodyElem::Scalar(_) => {}
            }
        }
        for h in &r.head {
            if let Some(l) = &h.src.label {
                head_labels.insert(l.clone());
            }
            for (regex, n) in &h.segments {
                if let Some(l) = &n.label {
                    head_labels.insert(l.clone());
                }
                for e in regex.edge_atoms() {
                    if let Some(l) = &e.label {
                        head_labels.insert(l.clone());
                    }
                }
            }
        }
    }
    let mut annotations: Vec<String> = Vec::new();
    let mut sorted_nodes: Vec<&String> = body_node_labels.iter().collect();
    sorted_nodes.sort();
    for l in sorted_nodes {
        let props = gen.schema.node_props(l)?.join(",");
        annotations.push(format!(
            "@input({l}, nodes, \"{}\", \"{l}\", \"{props}\").",
            gen.graph
        ));
    }
    let mut sorted_edges: Vec<&String> = body_edge_labels.iter().collect();
    sorted_edges.sort();
    for l in sorted_edges {
        let props = gen.schema.edge_props(l)?.join(",");
        annotations.push(format!(
            "@input({l}, edges, \"{}\", \"{l}\", \"{props}\").",
            gen.graph
        ));
    }
    let mut sorted_heads: Vec<&String> = head_labels.iter().collect();
    sorted_heads.sort();
    for l in sorted_heads {
        annotations.push(format!("@output({l})."));
    }
    if annotation_span.is_active() {
        telemetry::record("annotations", annotations.len() as i64);
    }
    drop(annotation_span);

    let mut source = String::new();
    source.push_str("% Generated by MTV (MetaLog-to-Vadalog translator).\n");
    for r in &main_rules {
        source.push_str(r);
        source.push('\n');
    }
    if !gen.aux_rules.is_empty() {
        source.push_str("% Auxiliary path-pattern predicates (Section 4, step 3).\n");
        for r in &gen.aux_rules {
            source.push_str(r);
            source.push('\n');
        }
    }
    for a in &annotations {
        source.push_str(a);
        source.push('\n');
    }

    let program = {
        let _s = kgm_runtime::span!("mtv.parse", "{} bytes", source.len());
        parse_program(&source).map_err(|e| {
            KgmError::Translation(format!(
                "MTV generated invalid Vadalog ({e}); source:\n{source}"
            ))
        })?
    };
    if root_span.is_active() {
        telemetry::record("main_rules", main_rules.len() as i64);
        telemetry::record("aux_rules", gen.aux_rules.len() as i64);
        telemetry::record("generated_rules", program.rules.len() as i64);
    }
    telemetry::counter_add("mtv.translations", 1);
    telemetry::counter_add("mtv.generated_rules", program.rules.len() as i64);
    Ok(MtvOutput {
        vadalog_source: source,
        program,
    })
}

fn translate_rule(gen: &mut Gen, rule: &MetaRule, out: &mut Vec<String>) -> Result<()> {
    // Body: path variants (ε expansion) × scalar/negated elements.
    let mut variant_sets: Vec<Vec<String>> = vec![Vec::new()];
    for elem in &rule.body {
        match elem {
            MetaBodyElem::Path(p) => {
                let vs = path_variants(gen, p)?;
                let mut next = Vec::new();
                for base in &variant_sets {
                    for v in &vs {
                        let mut combined = base.clone();
                        combined.extend(v.iter().cloned());
                        next.push(combined);
                    }
                }
                variant_sets = next;
            }
            MetaBodyElem::NegatedNode(n) => {
                let var = n.var.clone().unwrap_or_else(|| "_".to_string());
                let atom = node_atom_text(gen, n, &var)?;
                for v in &mut variant_sets {
                    v.push(format!("not {atom}"));
                }
            }
            MetaBodyElem::Scalar(s) => {
                for v in &mut variant_sets {
                    v.push(s.clone());
                }
            }
        }
    }
    // Atom ordering: the Vadalog parser requires positive atoms before
    // scalar steps, so sort each variant: atoms first (they start with an
    // identifier followed by `(` and are not `not`), preserving relative
    // order.
    for v in &mut variant_sets {
        let (atoms, rest): (Vec<String>, Vec<String>) = v.drain(..).partition(|s| {
            !s.starts_with("not ")
                && s.split('(').next().is_some_and(|p| {
                    !p.trim().is_empty()
                        && p.trim().chars().all(|c| c.is_alphanumeric() || c == '_')
                        && !s.contains("==")
                        && !s.contains('=')
                })
        });
        v.extend(atoms);
        v.extend(rest);
    }

    // Head: shared across variants, but fresh existentials per variant so
    // each generated Vadalog rule is self-contained.
    for variant in &variant_sets {
        let mut heads = Vec::new();
        for h in &rule.head {
            heads.extend(head_atoms(gen, h)?);
        }
        if variant.is_empty() {
            return Err(KgmError::Translation(
                "MetaLog rules need at least one body element".to_string(),
            ));
        }
        out.push(format!("{} -> {}.", variant.join(", "), heads.join(", ")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_metalog;
    use kgm_vadalog::Engine;

    fn company_schema() -> PgSchema {
        let mut s = PgSchema::new();
        s.declare_node("Business", ["name"])
            .declare_edge("OWNS", ["percentage"])
            .declare_edge("CONTROLS", Vec::<String>::new());
        s
    }

    #[test]
    fn control_program_translates_and_parses() {
        let meta = parse_metalog(
            r#"
            (x: Business) -> (x)[c: CONTROLS](x).
            (x: Business)[: CONTROLS](z: Business)[: OWNS; percentage: w](y: Business),
                v = msum(w, <z>), v > 0.5 -> (x)[c: CONTROLS](y).
            "#,
        )
        .unwrap();
        let out = translate(&meta, &company_schema(), "kg").unwrap();
        assert!(out.vadalog_source.contains("CONTROLS"));
        assert!(out
            .vadalog_source
            .contains("@input(Business, nodes, \"kg\", \"Business\", \"name\")."));
        assert!(out
            .vadalog_source
            .contains("@input(OWNS, edges, \"kg\", \"OWNS\", \"percentage\")."));
        assert!(out.vadalog_source.contains("@output(CONTROLS)."));
        assert_eq!(out.program.rules.len(), 2);
        // The engine must accept the generated program.
        Engine::new(out.program).unwrap();
    }

    #[test]
    fn padding_with_anonymous_vars_matches_schema_arity() {
        let mut schema = PgSchema::new();
        schema.declare_node("P", ["a", "b", "c"]);
        schema.declare_edge("E", Vec::<String>::new());
        let meta = parse_metalog("(x: P; b: v) -> (x)[e: E](x).").unwrap();
        let out = translate(&meta, &schema, "g").unwrap();
        // P(x, _, v, _): id + 3 props with b bound.
        assert!(
            out.vadalog_source.contains("P(x, _, v, _)"),
            "{}",
            out.vadalog_source
        );
    }

    #[test]
    fn descfrom_star_translation_matches_example_4_4() {
        let mut schema = PgSchema::new();
        schema
            .declare_node("SM_Node", Vec::<String>::new())
            .declare_edge("SM_CHILD", Vec::<String>::new())
            .declare_edge("SM_PARENT", Vec::<String>::new())
            .declare_edge("DESCFROM", Vec::<String>::new());
        let meta = parse_metalog(
            "(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])* (y: SM_Node)
                -> (x)[w: DESCFROM](y).",
        )
        .unwrap();
        let out = translate(&meta, &schema, "dict").unwrap();
        // β base + step rules exist (names are ml_tc_*):
        assert!(out.vadalog_source.contains("ml_tc_1(h, q)"));
        assert!(out.vadalog_source.contains("ml_tc_1(v, h)"));
        // Inverse of SM_CHILD swaps endpoints: SM_CHILD(_, mid, h) pattern.
        assert!(out.vadalog_source.contains("SM_CHILD(_, "));
        // ε-variant: endpoints equal.
        assert!(out.vadalog_source.contains("x == y"), "{}", out.vadalog_source);
        Engine::new(out.program).unwrap();
    }

    #[test]
    fn star_in_recursive_program_is_rejected() {
        let mut schema = PgSchema::new();
        schema
            .declare_node("A", Vec::<String>::new())
            .declare_edge("R", Vec::<String>::new());
        // R feeds itself through the head: recursive + star → reject.
        let meta = parse_metalog("(x: A) ([: R])* (y: A) -> (x)[e: R](y).").unwrap();
        let err = translate(&meta, &schema, "g").unwrap_err();
        assert!(matches!(err, KgmError::Analysis(_)));
    }

    #[test]
    fn alternation_generates_alpha_rules() {
        let mut schema = PgSchema::new();
        schema
            .declare_node("A", Vec::<String>::new())
            .declare_node("B", Vec::<String>::new())
            .declare_edge("R", Vec::<String>::new())
            .declare_edge("S", Vec::<String>::new())
            .declare_edge("OUT", Vec::<String>::new());
        let meta =
            parse_metalog("(x: A) ([: R] | [: S]) (y: B) -> (x)[e: OUT](y).").unwrap();
        let out = translate(&meta, &schema, "g").unwrap();
        let alpha_rules = out
            .vadalog_source
            .lines()
            .filter(|l| l.contains("-> ml_alt_1(h, q)."))
            .count();
        assert_eq!(alpha_rules, 2);
        Engine::new(out.program).unwrap();
    }

    #[test]
    fn named_vars_under_star_are_rejected() {
        let mut schema = PgSchema::new();
        schema
            .declare_node("A", Vec::<String>::new())
            .declare_edge("R", ["w"])
            .declare_edge("OUT", Vec::<String>::new());
        let meta =
            parse_metalog("(x: A) ([: R; w: v])* (y: A) -> (x)[e: OUT](y).").unwrap();
        assert!(translate(&meta, &schema, "g").is_err());
        let meta = parse_metalog("(x: A) ([z: R])* (y: A) -> (x)[e: OUT](y).").unwrap();
        assert!(translate(&meta, &schema, "g").is_err());
    }

    #[test]
    fn undeclared_labels_and_props_are_rejected() {
        let schema = company_schema();
        let meta = parse_metalog("(x: Unknown) -> (x)[c: CONTROLS](x).").unwrap();
        assert!(translate(&meta, &schema, "g").is_err());
        let meta = parse_metalog("(x: Business; nope: v) -> (x)[c: CONTROLS](x).").unwrap();
        assert!(translate(&meta, &schema, "g").is_err());
    }

    #[test]
    fn head_existentials_become_head_only_vars() {
        let meta = parse_metalog("(x: Business) -> (x)[: CONTROLS](x).").unwrap();
        let out = translate(&meta, &company_schema(), "g").unwrap();
        let rule = &out.program.rules[0];
        assert_eq!(rule.existential_vars().len(), 1, "{}", out.vadalog_source);
    }

    #[test]
    fn end_to_end_descfrom_over_facts() {
        // Dictionary fragment with natural edge orientations:
        // parent -SM_PARENT-> generalization -SM_CHILD-> child. A descendant
        // walks child --SM_CHILD⁻--> generalization --SM_PARENT⁻--> parent,
        // so both letters carry the inverse operator.
        let mut schema = PgSchema::new();
        schema
            .declare_node("SM_Node", Vec::<String>::new())
            .declare_edge("SM_CHILD", Vec::<String>::new())
            .declare_edge("SM_PARENT", Vec::<String>::new())
            .declare_edge("DESCFROM", Vec::<String>::new());
        let meta = parse_metalog(
            "(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT]-)* (y: SM_Node)
                -> (x)[w: DESCFROM](y).",
        )
        .unwrap();
        let out = translate(&meta, &schema, "dict").unwrap();
        let engine = Engine::new(out.program).unwrap();
        use kgm_common::Value;
        let n = |i: i64| Value::Int(i);
        // child 2 --SM_CHILD--> gen 10; gen 10 <--SM_PARENT-- parent 1:
        // edge tuples are (id, from, to).
        let facts: Vec<(&str, Vec<Vec<Value>>)> = vec![
            ("SM_Node", vec![vec![n(1)], vec![n(2)], vec![n(3)]]),
            // g10: parent 1, child 2;  g11: parent 2, child 3.
            ("SM_PARENT", vec![vec![n(100), n(1), n(10)], vec![n(101), n(2), n(11)]]),
            ("SM_CHILD", vec![vec![n(200), n(10), n(2)], vec![n(201), n(11), n(3)]]),
        ];
        let (db, _) = engine.run_with_facts(&facts).unwrap();
        // Pairs (x descendant-or-self, y ancestor): with ε every node pairs
        // with itself; 2→1, 3→2, 3→1 via two steps.
        let pairs: std::collections::BTreeSet<(i64, i64)> = db
            .facts_iter("DESCFROM")
            .map(|t| (t[1].as_i64().unwrap(), t[2].as_i64().unwrap()))
            .collect();
        assert!(pairs.contains(&(2, 1)));
        assert!(pairs.contains(&(3, 2)));
        assert!(pairs.contains(&(3, 1)), "two-step ancestry: {pairs:?}");
        assert!(pairs.contains(&(1, 1)), "ε reflexivity: {pairs:?}");
    }

    #[test]
    fn wait_edge_atom_direction_in_path() {
        // (a)[:SM_PARENT](g): edge goes a → g, so SM_PARENT(_, a, g).
        let mut schema = PgSchema::new();
        schema
            .declare_node("SM_Node", Vec::<String>::new())
            .declare_node("SM_Generalization", Vec::<String>::new())
            .declare_edge("SM_PARENT", Vec::<String>::new())
            .declare_edge("OUT", Vec::<String>::new());
        let meta = parse_metalog(
            "(a: SM_Node)[: SM_PARENT](g: SM_Generalization) -> (a)[e: OUT](g).",
        )
        .unwrap();
        let out = translate(&meta, &schema, "g").unwrap();
        assert!(
            out.vadalog_source.contains("SM_PARENT(_, a, g)"),
            "{}",
            out.vadalog_source
        );
    }
}
