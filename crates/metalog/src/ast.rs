//! MetaLog abstract syntax.

use kgm_common::Value;

/// A term inside a PG atom's property list: a variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum TermLike {
    /// A named variable (`_` is anonymous and always fresh).
    Var(String),
    /// A constant.
    Const(Value),
}

/// A PG node atom `(x : L; k₁ : t₁, …)`.
///
/// All parts are optional: `(x)` references an already-bound node variable,
/// `(: L)` selects by label anonymously.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeAtom {
    /// The atom identifier variable (`x`), if named.
    pub var: Option<String>,
    /// The node label (`L`), if constrained.
    pub label: Option<String>,
    /// Named property terms (`K`).
    pub props: Vec<(String, TermLike)>,
}

/// A PG edge atom `[x : L; k₁ : t₁, …]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EdgeAtom {
    /// The atom identifier variable, if named.
    pub var: Option<String>,
    /// The edge label.
    pub label: Option<String>,
    /// Named property terms.
    pub props: Vec<(String, TermLike)>,
}

/// A regular expression over PG edge atoms (the alphabet `A` of Section 4).
#[derive(Debug, Clone, PartialEq)]
pub enum PathRegex {
    /// A single edge atom.
    Edge(EdgeAtom),
    /// The inverse `ρ⁻` (postfix `-`).
    Inverse(Box<PathRegex>),
    /// Concatenation `S · T` (infix `.`).
    Concat(Vec<PathRegex>),
    /// Alternation `S | T`.
    Alt(Vec<PathRegex>),
    /// Kleene star `S*`.
    Star(Box<PathRegex>),
}

impl PathRegex {
    /// True if the empty path belongs to the language (only `*` introduces ε).
    pub fn nullable(&self) -> bool {
        match self {
            PathRegex::Edge(_) => false,
            PathRegex::Inverse(r) => r.nullable(),
            PathRegex::Concat(rs) => rs.iter().all(PathRegex::nullable),
            PathRegex::Alt(rs) => rs.iter().any(PathRegex::nullable),
            PathRegex::Star(_) => true,
        }
    }

    /// True if the regex is a single (possibly inverted) edge atom — the
    /// only shape allowed in rule heads.
    pub fn is_simple(&self) -> bool {
        match self {
            PathRegex::Edge(_) => true,
            PathRegex::Inverse(r) => r.is_simple(),
            _ => false,
        }
    }

    /// All edge atoms in the regex.
    pub fn edge_atoms(&self) -> Vec<&EdgeAtom> {
        match self {
            PathRegex::Edge(e) => vec![e],
            PathRegex::Inverse(r) | PathRegex::Star(r) => r.edge_atoms(),
            PathRegex::Concat(rs) | PathRegex::Alt(rs) => {
                rs.iter().flat_map(PathRegex::edge_atoms).collect()
            }
        }
    }

    /// True if the regex uses the Kleene star anywhere.
    pub fn has_star(&self) -> bool {
        match self {
            PathRegex::Edge(_) => false,
            PathRegex::Inverse(r) => r.has_star(),
            PathRegex::Concat(rs) | PathRegex::Alt(rs) => rs.iter().any(PathRegex::has_star),
            PathRegex::Star(_) => true,
        }
    }
}

/// A path pattern: a source node atom followed by (regex, node-atom)
/// segments — `(x:L) R₁ (y:M) R₂ (z:N) …`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// The source node atom.
    pub src: NodeAtom,
    /// The chained segments.
    pub segments: Vec<(PathRegex, NodeAtom)>,
}

/// One body element of a MetaLog rule.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaBodyElem {
    /// A path pattern (possibly a lone node atom).
    Path(PathPattern),
    /// A negated node atom `not (x : L)`.
    NegatedNode(NodeAtom),
    /// A scalar element — condition, assignment or aggregate assignment —
    /// kept as verbatim source text and passed through to Vadalog.
    Scalar(String),
}

/// A MetaLog rule `body → head`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaRule {
    /// Body elements, in written order.
    pub body: Vec<MetaBodyElem>,
    /// Head path patterns; every segment regex must be a simple
    /// (possibly inverted) edge atom.
    pub head: Vec<PathPattern>,
}

/// A MetaLog program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetaProgram {
    /// The rules, in source order.
    pub rules: Vec<MetaRule>,
}

impl MetaProgram {
    /// All node labels referenced anywhere, sorted.
    pub fn node_labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut add_node = |n: &NodeAtom| {
            if let Some(l) = &n.label {
                out.push(l.clone());
            }
        };
        for r in &self.rules {
            for e in &r.body {
                match e {
                    MetaBodyElem::Path(p) => {
                        add_node(&p.src);
                        for (_, n) in &p.segments {
                            add_node(n);
                        }
                    }
                    MetaBodyElem::NegatedNode(n) => add_node(n),
                    MetaBodyElem::Scalar(_) => {}
                }
            }
            for p in &r.head {
                add_node(&p.src);
                for (_, n) in &p.segments {
                    add_node(n);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// All edge labels referenced anywhere, sorted.
    pub fn edge_labels(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.rules {
            for e in &r.body {
                if let MetaBodyElem::Path(p) = e {
                    for (regex, _) in &p.segments {
                        for ea in regex.edge_atoms() {
                            if let Some(l) = &ea.label {
                                out.push(l.clone());
                            }
                        }
                    }
                }
            }
            for p in &r.head {
                for (regex, _) in &p.segments {
                    for ea in regex.edge_atoms() {
                        if let Some(l) = &ea.label {
                            out.push(l.clone());
                        }
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(label: &str) -> PathRegex {
        PathRegex::Edge(EdgeAtom {
            var: None,
            label: Some(label.to_string()),
            props: vec![],
        })
    }

    #[test]
    fn nullable_is_star_only() {
        assert!(!edge("R").nullable());
        assert!(PathRegex::Star(Box::new(edge("R"))).nullable());
        assert!(!PathRegex::Concat(vec![edge("R"), PathRegex::Star(Box::new(edge("S")))])
            .nullable());
        assert!(
            PathRegex::Concat(vec![
                PathRegex::Star(Box::new(edge("R"))),
                PathRegex::Star(Box::new(edge("S")))
            ])
            .nullable()
        );
        assert!(PathRegex::Alt(vec![edge("R"), PathRegex::Star(Box::new(edge("S")))]).nullable());
    }

    #[test]
    fn simple_shapes() {
        assert!(edge("R").is_simple());
        assert!(PathRegex::Inverse(Box::new(edge("R"))).is_simple());
        assert!(!PathRegex::Star(Box::new(edge("R"))).is_simple());
        assert!(!PathRegex::Concat(vec![edge("R"), edge("S")]).is_simple());
    }

    #[test]
    fn has_star_recurses() {
        let r = PathRegex::Concat(vec![
            PathRegex::Inverse(Box::new(edge("A"))),
            PathRegex::Alt(vec![edge("B"), PathRegex::Star(Box::new(edge("C")))]),
        ]);
        assert!(r.has_star());
        assert_eq!(r.edge_atoms().len(), 3);
    }
}
