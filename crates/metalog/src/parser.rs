//! The MetaLog parser.
//!
//! ASCII transcription of the paper's notation:
//!
//! ```text
//! % Example 4.1 — company control
//! (x: Business) -> (x)[c: CONTROLS](x).
//! (x: Business)[: CONTROLS](z: Business)[: OWNS; percentage: w](y: Business),
//!     v = sum(w, <z>), v > 0.5 -> (x)[c: CONTROLS](y).
//!
//! % Example 4.3 — descendants via a regular path pattern
//! (x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])* (y: SM_Node)
//!     -> (x)[w: DESCFROM](y).
//! ```
//!
//! `-` is the postfix inverse, `.` concatenation, `|` alternation, `*` the
//! Kleene star. Scalar body elements (conditions, assignments, aggregates)
//! are kept as verbatim text and re-emitted into the generated Vadalog.

use crate::ast::{
    EdgeAtom, MetaBodyElem, MetaProgram, MetaRule, NodeAtom, PathPattern, PathRegex, TermLike,
};
use kgm_common::{KgmError, Result, Value};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Punct(&'static str),
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    start: usize,
    end: usize,
    line: u32,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut line = 1u32;
    let err =
        |line: u32, msg: String| KgmError::parse("MetaLog", format!("line {line}: {msg}"));
    while pos < bytes.len() {
        let c = bytes[pos] as char;
        let start = pos;
        match c {
            '\n' => {
                line += 1;
                pos += 1;
            }
            c if c.is_whitespace() => pos += 1,
            '%' | '#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            '"' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(err(line, "unterminated string".into()));
                    }
                    match bytes[pos] as char {
                        '"' => {
                            pos += 1;
                            break;
                        }
                        '\\' => {
                            let esc = *bytes
                                .get(pos + 1)
                                .ok_or_else(|| err(line, "unterminated escape".into()))?
                                as char;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '"' => '"',
                                '\\' => '\\',
                                _ => return Err(err(line, format!("bad escape \\{esc}"))),
                            });
                            pos += 2;
                        }
                        '\n' => return Err(err(line, "unterminated string".into())),
                        ch => {
                            s.push(ch);
                            pos += ch.len_utf8();
                        }
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    start,
                    end: pos,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                while pos < bytes.len() && (bytes[pos] as char).is_ascii_digit() {
                    pos += 1;
                }
                let mut is_float = false;
                if pos + 1 < bytes.len()
                    && bytes[pos] == b'.'
                    && (bytes[pos + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    pos += 1;
                    while pos < bytes.len() && (bytes[pos] as char).is_ascii_digit() {
                        pos += 1;
                    }
                }
                let text = &src[start..pos];
                let tok = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| err(line, format!("bad float {text}")))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| err(line, format!("bad int {text}")))?,
                    )
                };
                out.push(SpannedTok {
                    tok,
                    start,
                    end: pos,
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                while pos < bytes.len() {
                    let c = bytes[pos] as char;
                    if c.is_alphanumeric() || c == '_' {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(src[start..pos].to_string()),
                    start,
                    end: pos,
                    line,
                });
            }
            _ => {
                let two = src.get(pos..pos + 2).unwrap_or("");
                let p: Option<&'static str> = match two {
                    "->" => Some("->"),
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "&&" => Some("&&"),
                    "||" => Some("||"),
                    _ => None,
                };
                if let Some(p) = p {
                    pos += 2;
                    out.push(SpannedTok {
                        tok: Tok::Punct(p),
                        start,
                        end: pos,
                        line,
                    });
                    continue;
                }
                let one: &'static str = match c {
                    '(' => "(",
                    ')' => ")",
                    '[' => "[",
                    ']' => "]",
                    ',' => ",",
                    '.' => ".",
                    ';' => ";",
                    ':' => ":",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '|' => "|",
                    '!' => "!",
                    _ => return Err(err(line, format!("unexpected `{c}`"))),
                };
                pos += 1;
                out.push(SpannedTok {
                    tok: Tok::Punct(one),
                    start,
                    end: pos,
                    line,
                });
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl Into<String>) -> KgmError {
        let line = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0);
        KgmError::parse("MetaLog", format!("line {line}: {}", msg.into()))
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off).map(|t| &t.tok)
    }

    fn eat(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> Result<()> {
        if self.eat(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<MetaProgram> {
        let mut rules = Vec::new();
        while self.peek().is_some() {
            rules.push(self.rule()?);
        }
        Ok(MetaProgram { rules })
    }

    fn rule(&mut self) -> Result<MetaRule> {
        let mut body = Vec::new();
        loop {
            body.push(self.body_elem()?);
            if self.eat(",") {
                continue;
            }
            break;
        }
        self.expect("->")?;
        let mut head = Vec::new();
        loop {
            let p = self.path_pattern()?;
            for (regex, _) in &p.segments {
                if !regex.is_simple() {
                    return Err(self.error(
                        "head path patterns must use simple (possibly inverted) edge atoms",
                    ));
                }
            }
            head.push(p);
            if self.eat(",") {
                continue;
            }
            break;
        }
        self.expect(".")?;
        Ok(MetaRule { body, head })
    }

    #[allow(clippy::collapsible_match)]
    fn body_elem(&mut self) -> Result<MetaBodyElem> {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "not")
            && matches!(self.peek_at(1), Some(Tok::Punct("(")))
        {
            self.pos += 1;
            let n = self.node_atom()?;
            return Ok(MetaBodyElem::NegatedNode(n));
        }
        if matches!(self.peek(), Some(Tok::Punct("("))) {
            return Ok(MetaBodyElem::Path(self.path_pattern()?));
        }
        // Scalar element: verbatim tokens until a top-level `,` or `->`.
        let start_tok = self.pos;
        let mut depth = 0i32;
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                Tok::Punct("(") | Tok::Punct("[") => depth += 1,
                Tok::Punct(")") | Tok::Punct("]") => depth -= 1,
                Tok::Punct("<") => {
                    // `<` opens a contributor list only right after `(` or `,`.
                    if self.pos > start_tok {
                        if let Some(prev) = self.toks.get(self.pos - 1) {
                            if matches!(prev.tok, Tok::Punct("(") | Tok::Punct(",")) {
                                angle += 1;
                            }
                        }
                    }
                }
                Tok::Punct(">") => {
                    if angle > 0 {
                        angle -= 1;
                    }
                }
                Tok::Punct(",") if depth == 0 && angle == 0 => break,
                Tok::Punct("->") if depth == 0 => break,
                Tok::Punct(".") if depth == 0 => break,
                _ => {}
            }
            self.pos += 1;
        }
        if self.pos == start_tok {
            return Err(self.error("empty body element"));
        }
        let from = self.toks[start_tok].start;
        let to = self.toks[self.pos - 1].end;
        Ok(MetaBodyElem::Scalar(self.src[from..to].trim().to_string()))
    }

    fn path_pattern(&mut self) -> Result<PathPattern> {
        let src = self.node_atom()?;
        let mut segments = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Punct("[")) => {
                    let regex = self.regex_concat()?;
                    let node = self.node_atom()?;
                    segments.push((regex, node));
                }
                Some(Tok::Punct("(")) if self.lookahead_is_group() => {
                    let regex = self.regex_concat()?;
                    let node = self.node_atom()?;
                    segments.push((regex, node));
                }
                _ => break,
            }
        }
        Ok(PathPattern { src, segments })
    }

    /// After consecutive `(`, a `[` means a regex group; anything else means
    /// a node atom.
    fn lookahead_is_group(&self) -> bool {
        let mut off = 0;
        while matches!(self.peek_at(off), Some(Tok::Punct("("))) {
            off += 1;
        }
        matches!(self.peek_at(off), Some(Tok::Punct("[")))
    }

    // regex := alt; alt := concat ("|" concat)*; handled bottom-up so that
    // `a . b | c` parses as `(a.b) | c`.
    fn regex_concat(&mut self) -> Result<PathRegex> {
        let mut alts = vec![self.regex_seq()?];
        while self.eat("|") {
            alts.push(self.regex_seq()?);
        }
        if alts.len() == 1 {
            Ok(alts.pop().expect("one"))
        } else {
            Ok(PathRegex::Alt(alts))
        }
    }

    fn regex_seq(&mut self) -> Result<PathRegex> {
        let mut items = vec![self.regex_postfix()?];
        loop {
            if self.eat(".") {
                items.push(self.regex_postfix()?);
                continue;
            }
            // Juxtaposition continues the sequence only for `[`; a `(` here
            // belongs to the following node atom unless it is a group.
            if matches!(self.peek(), Some(Tok::Punct("["))) {
                items.push(self.regex_postfix()?);
                continue;
            }
            if matches!(self.peek(), Some(Tok::Punct("("))) && self.lookahead_is_group() {
                items.push(self.regex_postfix()?);
                continue;
            }
            break;
        }
        if items.len() == 1 {
            Ok(items.pop().expect("one"))
        } else {
            Ok(PathRegex::Concat(items))
        }
    }

    fn regex_postfix(&mut self) -> Result<PathRegex> {
        let mut r = self.regex_primary()?;
        loop {
            if self.eat("-") {
                r = PathRegex::Inverse(Box::new(r));
            } else if self.eat("*") {
                r = PathRegex::Star(Box::new(r));
            } else {
                break;
            }
        }
        Ok(r)
    }

    fn regex_primary(&mut self) -> Result<PathRegex> {
        if self.eat("(") {
            let r = self.regex_concat()?;
            self.expect(")")?;
            return Ok(r);
        }
        Ok(PathRegex::Edge(self.edge_atom()?))
    }

    fn node_atom(&mut self) -> Result<NodeAtom> {
        self.expect("(")?;
        let a = self.atom_interior(")")?;
        Ok(NodeAtom {
            var: a.0,
            label: a.1,
            props: a.2,
        })
    }

    fn edge_atom(&mut self) -> Result<EdgeAtom> {
        self.expect("[")?;
        let a = self.atom_interior("]")?;
        Ok(EdgeAtom {
            var: a.0,
            label: a.1,
            props: a.2,
        })
    }

    #[allow(clippy::type_complexity)]
    fn atom_interior(
        &mut self,
        close: &str,
    ) -> Result<(Option<String>, Option<String>, Vec<(String, TermLike)>)> {
        // [var] [":" label] [";" props]
        let mut var = None;
        let mut label = None;
        let mut props = Vec::new();
        if let Some(Tok::Ident(_)) = self.peek() {
            var = Some(self.ident()?);
        }
        if self.eat(":") {
            label = Some(self.ident()?);
        }
        if self.eat(";") {
            loop {
                let name = self.ident()?;
                self.expect(":")?;
                let term = self.term()?;
                props.push((name, term));
                if self.eat(",") {
                    continue;
                }
                break;
            }
        }
        self.expect(close)?;
        Ok((var, label, props))
    }

    fn term(&mut self) -> Result<TermLike> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                match s.as_str() {
                    "true" => Ok(TermLike::Const(Value::Bool(true))),
                    "false" => Ok(TermLike::Const(Value::Bool(false))),
                    _ => Ok(TermLike::Var(s)),
                }
            }
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(TermLike::Const(Value::Int(i)))
            }
            Some(Tok::Float(f)) => {
                self.pos += 1;
                Ok(TermLike::Const(Value::Float(f)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(TermLike::Const(Value::str(s)))
            }
            Some(Tok::Punct("-")) => {
                self.pos += 1;
                match self.peek().cloned() {
                    Some(Tok::Int(i)) => {
                        self.pos += 1;
                        Ok(TermLike::Const(Value::Int(-i)))
                    }
                    Some(Tok::Float(f)) => {
                        self.pos += 1;
                        Ok(TermLike::Const(Value::Float(-f)))
                    }
                    other => Err(self.error(format!("expected number, found {other:?}"))),
                }
            }
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }
}

/// Parse a MetaLog program from text.
pub fn parse_metalog(src: &str) -> Result<MetaProgram> {
    let toks = lex(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_control_rule_example_4_1() {
        let p = parse_metalog(
            r#"
            (x: Business) -> (x)[c: CONTROLS](x).
            (x: Business)[: CONTROLS](z: Business)[: OWNS; percentage: w](y: Business),
                v = sum(w, <z>), v > 0.5 -> (x)[c: CONTROLS](y).
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        let r = &p.rules[1];
        assert_eq!(r.body.len(), 3);
        match &r.body[0] {
            MetaBodyElem::Path(path) => {
                assert_eq!(path.src.label.as_deref(), Some("Business"));
                assert_eq!(path.segments.len(), 2);
                let (regex, mid) = &path.segments[0];
                assert!(regex.is_simple());
                assert_eq!(mid.label.as_deref(), Some("Business"));
                let (owns, _) = &path.segments[1];
                match owns {
                    PathRegex::Edge(e) => {
                        assert_eq!(e.label.as_deref(), Some("OWNS"));
                        assert_eq!(e.props.len(), 1);
                        assert_eq!(e.props[0].0, "percentage");
                    }
                    other => panic!("expected edge, got {other:?}"),
                }
            }
            other => panic!("expected path, got {other:?}"),
        }
        assert_eq!(
            r.body[1],
            MetaBodyElem::Scalar("v = sum(w, <z>)".to_string())
        );
        assert_eq!(r.body[2], MetaBodyElem::Scalar("v > 0.5".to_string()));
        assert_eq!(r.head.len(), 1);
    }

    #[test]
    fn parse_descfrom_example_4_3() {
        let p = parse_metalog(
            "(x: SM_Node) ([: SM_CHILD]- . [: SM_PARENT])* (y: SM_Node)
                -> (x)[w: DESCFROM](y).",
        )
        .unwrap();
        let r = &p.rules[0];
        match &r.body[0] {
            MetaBodyElem::Path(path) => {
                let (regex, _) = &path.segments[0];
                match regex {
                    PathRegex::Star(inner) => match inner.as_ref() {
                        PathRegex::Concat(items) => {
                            assert_eq!(items.len(), 2);
                            assert!(matches!(items[0], PathRegex::Inverse(_)));
                            assert!(matches!(items[1], PathRegex::Edge(_)));
                        }
                        other => panic!("expected concat, got {other:?}"),
                    },
                    other => panic!("expected star, got {other:?}"),
                }
            }
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn parse_alternation() {
        let p = parse_metalog(
            "(x: A) ([: R] | [: S]- . [: T]) (y: B) -> (x)[e: OUT](y).",
        )
        .unwrap();
        match &p.rules[0].body[0] {
            MetaBodyElem::Path(path) => match &path.segments[0].0 {
                PathRegex::Alt(alts) => {
                    assert_eq!(alts.len(), 2);
                    assert!(matches!(alts[0], PathRegex::Edge(_)));
                    assert!(matches!(alts[1], PathRegex::Concat(_)));
                }
                other => panic!("expected alt, got {other:?}"),
            },
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn head_with_inverse_edge_as_in_example_5_2() {
        let p = parse_metalog(
            "(c: SM_Node) -> (x)[u: SM_FROM]-(f: SM_Edge)[t: SM_TO](z).",
        )
        .unwrap();
        let head = &p.rules[0].head[0];
        assert_eq!(head.segments.len(), 2);
        assert!(matches!(head.segments[0].0, PathRegex::Inverse(_)));
    }

    #[test]
    fn head_with_star_is_rejected() {
        assert!(parse_metalog("(x: A) -> (x)([: R])*(y).").is_err());
    }

    #[test]
    fn node_atom_with_props_and_anonymous_parts() {
        let p = parse_metalog(
            r#"(x: PhysicalPerson; name: n, gender: "male"), (: Place) -> (x)[r: RESIDES](y: Place)."#,
        )
        .unwrap();
        let r = &p.rules[0];
        match &r.body[0] {
            MetaBodyElem::Path(path) => {
                assert_eq!(path.src.props.len(), 2);
                assert_eq!(path.src.props[1].1, TermLike::Const(Value::str("male")));
            }
            other => panic!("{other:?}"),
        }
        match &r.body[1] {
            MetaBodyElem::Path(path) => {
                assert!(path.src.var.is_none());
                assert_eq!(path.src.label.as_deref(), Some("Place"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negated_node_atom() {
        let p = parse_metalog("(x: A), not (x: Excluded) -> (x)[e: OK](x).").unwrap();
        assert!(matches!(p.rules[0].body[1], MetaBodyElem::NegatedNode(_)));
    }

    #[test]
    fn scalar_with_skolem_assignment() {
        let p = parse_metalog(
            r#"(n: SM_Node; schemaOID: s), s == 123, x = skolem("skN", n)
               -> (x: SM_Node; schemaOID: 124)."#,
        )
        .unwrap();
        let r = &p.rules[0];
        assert_eq!(r.body[1], MetaBodyElem::Scalar("s == 123".to_string()));
        assert_eq!(
            r.body[2],
            MetaBodyElem::Scalar(r#"x = skolem("skN", n)"#.to_string())
        );
    }

    #[test]
    fn labels_are_collected() {
        let p = parse_metalog(
            "(x: Business)[: OWNS](y: Business) -> (x)[c: CONTROLS](y).",
        )
        .unwrap();
        assert_eq!(p.node_labels(), vec!["Business"]);
        assert_eq!(p.edge_labels(), vec!["CONTROLS", "OWNS"]);
    }

    #[test]
    fn comparison_inside_scalar_does_not_open_angle() {
        let p = parse_metalog("(x: A; v: w), w < 3, w > 1 -> (x)[e: OK](x).").unwrap();
        assert_eq!(p.rules[0].body[1], MetaBodyElem::Scalar("w < 3".to_string()));
        assert_eq!(p.rules[0].body[2], MetaBodyElem::Scalar("w > 1".to_string()));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(parse_metalog("(x: A) -> ").is_err());
        assert!(parse_metalog("(x A) -> (x)[e: E](x).").is_err());
        assert!(parse_metalog("(x: A) (y: B) -> (x)[e: E](y).").is_err());
    }
}
