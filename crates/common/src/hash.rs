//! A fast, non-cryptographic hasher in the spirit of rustc's `FxHasher`.
//!
//! HashDoS resistance is irrelevant for the KGModel engines (all inputs are
//! trusted design artefacts or synthetic workloads), while hash throughput on
//! small integer keys — OIDs, symbols, tuple hashes — dominates the chase and
//! pattern-matching inner loops. The external `rustc-hash` crate is not in
//! the approved dependency set, so the algorithm (a multiply-and-rotate mix
//! with the same golden-ratio constant) is implemented here.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc `Fx` mixing function: fast and well-distributed for small keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Mix in the length so prefixes of zero-padded keys differ.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Hash any `Hash` value with the Fx algorithm in one call.
///
/// Used wherever a stable in-process 64-bit digest is needed (tuple
/// signatures, Skolem argument folding).
#[inline]
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_integers_hash_differently() {
        let a = fx_hash_one(&1u64);
        let b = fx_hash_one(&2u64);
        assert_ne!(a, b);
    }

    #[test]
    fn byte_prefixes_hash_differently() {
        // A zero-padded remainder must not collide with the shorter prefix.
        assert_ne!(fx_hash_one(&b"ab".as_slice()), fx_hash_one(&b"ab\0".as_slice()));
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(fx_hash_one(&"CONTROLS"), fx_hash_one(&"CONTROLS"));
    }

    #[test]
    fn maps_work_with_fx_hasher() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&"v"));
    }
}
