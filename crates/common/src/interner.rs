//! A thread-safe string interner.
//!
//! Labels, property names and predicate names are repeated millions of times
//! across dictionary graphs, schemas and fact stores. Interning them to a
//! 32-bit [`Symbol`] makes comparisons and hashing O(1) and shrinks
//! oft-instantiated types (see the type-size guidance of the Rust perf book).

use crate::hash::FxHashMap;
use kgm_runtime::sync::RwLock;
use std::fmt;
use std::sync::Arc;

/// An interned string handle. Cheap to copy, hash and compare.
///
/// A `Symbol` is only meaningful together with the [`Interner`] that issued
/// it; KGModel uses one process-global interner per engine instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol in its interner.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[derive(Default)]
struct InternerInner {
    map: FxHashMap<Arc<str>, Symbol>,
    strings: Vec<Arc<str>>,
}

/// A thread-safe append-only string interner.
#[derive(Default)]
pub struct Interner {
    inner: RwLock<InternerInner>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its stable [`Symbol`].
    pub fn intern(&self, s: &str) -> Symbol {
        if let Some(&sym) = self.inner.read().map.get(s) {
            return sym;
        }
        let mut inner = self.inner.write();
        // Re-check under the write lock: another thread may have won the race.
        if let Some(&sym) = inner.map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Symbol(u32::try_from(inner.strings.len()).expect("interner overflow"));
        inner.strings.push(arc.clone());
        inner.map.insert(arc, sym);
        sym
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was issued by a different interner and is out of range.
    pub fn resolve(&self, sym: Symbol) -> Arc<str> {
        self.inner.read().strings[sym.0 as usize].clone()
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.inner.read().map.get(s).copied()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("SM_Node");
        let b = i.intern("SM_Node");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let i = Interner::new();
        assert_ne!(i.intern("SM_Node"), i.intern("SM_Edge"));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        let s = i.intern("percentage");
        assert_eq!(&*i.resolve(s), "percentage");
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert!(i.get("missing").is_none());
        assert!(i.is_empty());
    }

    #[test]
    fn concurrent_interning_converges() {
        let i = std::sync::Arc::new(Interner::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let i = i.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|k| i.intern(&format!("label{}", k % 10)))
                    .collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(i.len(), 10);
        // All threads must agree on every symbol.
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
