//! Value interning for columnar fact storage.
//!
//! The chase engine stores tuples as flat per-column `u64` id arrays; the
//! [`ValuePool`] is the codec between those packed columns and [`Value`]s.
//!
//! The pool is **two-level** because `Value` equality is coarser than value
//! identity: `Int(1) == Float(1.0)` (with a coherent hash), and the engine's
//! deduplication and joins must respect that equality — but a stored tuple
//! must read back with exactly the representation it was inserted with (a
//! downstream `mod` on what was inserted as an `Int` must not suddenly see a
//! `Float` because some other tuple interned `1.0` first). So:
//!
//! - **exact ids** (`intern`, `get`, `pack`, `unpack`) key on the exact
//!   representation (`ValueType` + payload) and are what the columns store;
//! - **class ids** (`class`, `classes`, `lookup`) identify the `Value`
//!   equality class — the exact id of its first-interned member — and are
//!   what tuple hashes, dedup comparisons and join keys use.
//!
//! With class ids in the dedup path the columnar store rejects duplicates
//! exactly like the row-oriented `FxHashSet<Vec<Value>>` it replaced, while
//! exact ids in the columns preserve first-inserted tuples verbatim.

use crate::hash::FxHashMap;
use crate::value::{Value, ValueType};

/// An append-only `Value` ↔ `u64` id table (see the module docs for the
/// exact-id / class-id split).
///
/// Ids are dense (`0..len`) and never invalidated. A pool is the private
/// property of one fact store — ids from different pools are not comparable.
#[derive(Debug, Default, Clone)]
pub struct ValuePool {
    vals: Vec<Value>,
    /// Exact id → class id (the exact id of the class's first member).
    class_of: Vec<u64>,
    /// Exact representation → exact id. The `ValueType` component splits the
    /// cross-numeric `Int`/`Float` equality class into its exact members.
    exact_ids: FxHashMap<(ValueType, Value), u64>,
    /// `Value`-equality class → class id.
    class_ids: FxHashMap<Value, u64>,
    /// Indirect heap bytes owned by interned values (string payloads); the
    /// direct `Vec`/map footprint is derived from capacities on demand.
    str_bytes: usize,
}

impl ValuePool {
    pub fn new() -> ValuePool {
        ValuePool::default()
    }

    /// Number of distinct exact values interned.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Intern `v`, returning its exact id. The same representation always
    /// maps to the same id; `Int(1)` and `Float(1.0)` get distinct exact ids
    /// in the same equality class.
    pub fn intern(&mut self, v: &Value) -> u64 {
        if let Some(&id) = self.exact_ids.get(&(v.value_type(), v.clone())) {
            return id;
        }
        self.intern_new(v.clone())
    }

    /// Intern an owned value.
    pub fn intern_owned(&mut self, v: Value) -> u64 {
        if let Some(&id) = self.exact_ids.get(&(v.value_type(), v.clone())) {
            return id;
        }
        self.intern_new(v)
    }

    fn intern_new(&mut self, v: Value) -> u64 {
        let id = self.vals.len() as u64;
        if let Value::Str(s) = &v {
            self.str_bytes += s.len();
        }
        let class = *self.class_ids.entry(v.clone()).or_insert(id);
        self.class_of.push(class);
        self.vals.push(v.clone());
        self.exact_ids.insert((v.value_type(), v), id);
        id
    }

    /// The equality-class id of an exact id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this pool.
    #[inline]
    pub fn class(&self, id: u64) -> u64 {
        self.class_of[id as usize]
    }

    /// The full exact-id → class-id table, indexable by exact id. Hot join
    /// and dedup loops take this slice once instead of calling
    /// [`ValuePool::class`] through the pool per element.
    #[inline]
    pub fn classes(&self) -> &[u64] {
        &self.class_of
    }

    /// Read-only probe: the **class id** of `v` if any equal value has ever
    /// been interned. Workers deduplicating against a frozen store and join
    /// probes use this — a miss means no equal value (and hence no tuple
    /// containing one) can be present.
    pub fn lookup(&self, v: &Value) -> Option<u64> {
        self.class_ids.get(v).copied()
    }

    /// Resolve an exact id back to the value it was interned from.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this pool.
    pub fn get(&self, id: u64) -> &Value {
        &self.vals[id as usize]
    }

    /// Pack a tuple of values into exact ids, appending to `out`.
    pub fn pack(&mut self, tuple: &[Value], out: &mut Vec<u64>) {
        out.reserve(tuple.len());
        for v in tuple {
            out.push(self.intern(v));
        }
    }

    /// Unpack a row of exact ids back into owned values (cheap: `Value`
    /// clones are at most an `Arc` bump).
    pub fn unpack(&self, ids: &[u64]) -> Vec<Value> {
        ids.iter().map(|&id| self.get(id).clone()).collect()
    }

    /// Approximate heap footprint of the pool itself: the reverse table, the
    /// class table, both id maps, and string payloads. Each `Arc<str>`
    /// payload is counted once even though map keys and the reverse table
    /// share it.
    pub fn approx_bytes(&self) -> usize {
        let val = std::mem::size_of::<Value>();
        let u64s = std::mem::size_of::<u64>();
        // FxHashMap entry: key + value + ~1/8 control overhead per slot,
        // with hashbrown's ~8/7 capacity slack folded into a flat factor.
        let exact_entry = std::mem::size_of::<(ValueType, Value)>() + u64s + 8;
        let class_entry = val + u64s + 8;
        self.vals.capacity() * val
            + self.class_of.capacity() * u64s
            + self.exact_ids.capacity() * exact_entry
            + self.class_ids.capacity() * class_entry
            + self.str_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_share_a_class_but_keep_exact_representations() {
        let mut pool = ValuePool::new();
        let a = pool.intern(&Value::Int(1));
        let b = pool.intern(&Value::Float(1.0));
        assert_ne!(a, b, "distinct representations get distinct exact ids");
        assert_eq!(pool.class(a), pool.class(b), "but share one class");
        assert_eq!(pool.class(a), a, "the first member names the class");
        assert_eq!(pool.get(a), &Value::Int(1));
        assert_eq!(pool.get(b).value_type(), ValueType::Float, "exact ids resolve verbatim");
        assert_eq!(pool.len(), 2);

        let c = pool.intern(&Value::Float(2.5));
        assert_ne!(pool.class(a), pool.class(c));
        assert_eq!(pool.get(c), &Value::Float(2.5));
    }

    #[test]
    fn reinterning_is_stable() {
        let mut pool = ValuePool::new();
        let a = pool.intern(&Value::Int(7));
        let b = pool.intern_owned(Value::Float(7.0));
        assert_eq!(pool.intern(&Value::Int(7)), a);
        assert_eq!(pool.intern(&Value::Float(7.0)), b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pack_unpack_round_trips_exactly() {
        let mut pool = ValuePool::new();
        let tuple = vec![
            Value::str("alpha"),
            Value::Int(7),
            Value::Float(7.0),
            Value::str("alpha"),
        ];
        let mut ids = Vec::new();
        pool.pack(&tuple, &mut ids);
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], ids[3], "repeated values reuse the exact id");
        assert_ne!(ids[1], ids[2], "Int(7) and Float(7.0) stay distinct");
        let back = pool.unpack(&ids);
        assert_eq!(back, tuple);
        for (v, b) in tuple.iter().zip(&back) {
            assert_eq!(v.value_type(), b.value_type(), "bitwise fidelity");
        }
    }

    #[test]
    fn lookup_is_read_only_and_class_keyed() {
        let mut pool = ValuePool::new();
        let a = pool.intern(&Value::Int(3));
        assert_eq!(pool.lookup(&Value::Float(3.0)), Some(pool.class(a)));
        assert_eq!(pool.lookup(&Value::Int(4)), None);
        assert_eq!(pool.len(), 1, "lookup must not intern");
    }

    #[test]
    fn classes_slice_mirrors_class() {
        let mut pool = ValuePool::new();
        for v in [Value::Int(1), Value::Float(1.0), Value::str("x")] {
            pool.intern(&v);
        }
        let classes = pool.classes();
        assert_eq!(classes.len(), pool.len());
        for id in 0..pool.len() as u64 {
            assert_eq!(classes[id as usize], pool.class(id));
        }
    }

    #[test]
    fn approx_bytes_grows_with_contents() {
        let mut pool = ValuePool::new();
        let empty = pool.approx_bytes();
        for i in 0..1000 {
            pool.intern_owned(Value::str(format!("company-{i}")));
        }
        let full = pool.approx_bytes();
        assert!(full > empty + 1000 * 10, "{empty} -> {full}");
    }
}
