//! The shared plumbing of the hand-rolled text codecs.
//!
//! `kgm-common` types serialize through explicit `to_text` / `from_text`
//! pairs instead of serde derives: the formats are line-oriented, stable by
//! construction (they are spelled out in code, not generated), and need no
//! external crates — a requirement of the hermetic build. This module holds
//! the error type and the string escaping every codec shares.

use std::fmt;

/// A malformed text encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    /// Build an error with a human-readable message.
    pub fn new(message: impl Into<String>) -> CodecError {
        CodecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Escape a string for embedding in a line- and `|`-delimited record:
/// backslash, newline, carriage return and the pipe separator.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '|' => out.push_str("\\p"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`].
pub fn unescape(s: &str) -> Result<String, CodecError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('p') => out.push('|'),
            other => {
                return Err(CodecError::new(format!(
                    "bad escape sequence \\{} in {s:?}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_awkward_strings() {
        for s in ["", "plain", "a|b", "back\\slash", "line\nbreak\r", "\\n|\\p"] {
            assert_eq!(unescape(&escape(s)).unwrap(), s, "{s:?}");
        }
    }

    #[test]
    fn escaped_form_is_single_line_and_pipe_free() {
        let e = escape("a|b\nc");
        assert!(!e.contains('\n') && !e.contains('|'), "{e:?}");
    }

    #[test]
    fn unescape_rejects_dangling_or_unknown_escapes() {
        assert!(unescape("trailing\\").is_err());
        assert!(unescape("\\q").is_err());
    }
}
