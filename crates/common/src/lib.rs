//! # kgm-common
//!
//! Shared foundations for the KGModel workspace: object identifiers, typed
//! values, deterministic (linker) Skolem functors, a fast non-cryptographic
//! hasher, and a string interner.
//!
//! Every construct in the KGModel representation stack — meta-constructs,
//! super-constructs, model constructs, and their instances — is identified by
//! a unique internal Object Identifier ([`Oid`]), exactly as prescribed in
//! Section 3.1 of the paper. Derived objects produced by reasoning carry
//! either fresh *labelled nulls* or values minted by *linker Skolem functors*
//! (Section 4), both of which live in identifier spaces disjoint from ground
//! OIDs.

pub mod codec;
pub mod error;
pub mod hash;
pub mod interner;
pub mod oid;
pub mod pool;
pub mod skolem;
pub mod value;

pub use codec::CodecError;
pub use error::{KgmError, Result};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use interner::{Interner, Symbol};
pub use pool::ValuePool;
pub use oid::{Oid, OidGen, OidSpace};
pub use skolem::{SkolemFunctor, SkolemRegistry};
pub use value::{Value, ValueType};
