//! The typed value domain shared by stores, schemas and the reasoner.
//!
//! Values cover the constants `C` of the paper's formal development (Section
//! 4): booleans, integers, floats, strings and dates, plus [`Oid`]s so that
//! labelled nulls (`N`) and linker-Skolem values (`I`) can flow through rule
//! evaluation as first-class terms.

use crate::codec::{escape, unescape, CodecError};
use crate::oid::Oid;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Scalar types usable as attribute/property/field domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Calendar date, stored as days since the Unix epoch.
    Date,
    /// An object identifier (ground, null or Skolem).
    Oid,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "string",
            ValueType::Date => "date",
            ValueType::Oid => "oid",
        };
        f.write_str(name)
    }
}

impl ValueType {
    /// Parse a GSL type name.
    pub fn parse(name: &str) -> Option<ValueType> {
        match name {
            "bool" | "boolean" => Some(ValueType::Bool),
            "int" | "integer" | "long" => Some(ValueType::Int),
            "float" | "double" | "decimal" => Some(ValueType::Float),
            "string" | "str" | "text" => Some(ValueType::Str),
            "date" => Some(ValueType::Date),
            "oid" => Some(ValueType::Oid),
            _ => None,
        }
    }
}

/// A runtime value.
///
/// `Float` wraps its bits for `Eq`/`Hash` purposes (NaN never occurs in the
/// engines: every arithmetic producer checks for it).
#[derive(Clone)]
pub enum Value {
    /// Boolean constant.
    Bool(bool),
    /// Integer constant.
    Int(i64),
    /// Float constant. Never NaN by construction.
    Float(f64),
    /// Interned-on-the-heap string constant (cheap to clone).
    Str(Arc<str>),
    /// Date as days since the Unix epoch.
    Date(i32),
    /// An object identifier.
    Oid(Oid),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Date(_) => ValueType::Date,
            Value::Oid(_) => ValueType::Oid,
        }
    }

    /// Numeric view (ints widen to floats) used by comparisons and arithmetic.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// OID view.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Value::Oid(o) => Some(*o),
            _ => None,
        }
    }

    /// True if this value is a labelled null.
    pub fn is_labelled_null(&self) -> bool {
        matches!(self, Value::Oid(o) if o.is_null())
    }

    /// Stable single-line text encoding: a type letter, a colon, then the
    /// payload (`B:true`, `I:-3`, `F:0.5`, `S:<escaped>`, `D:18000`,
    /// `O:G7`). Strings are escaped so the output never contains a newline
    /// or a `|`, making values safe to embed in line/pipe-delimited records.
    /// Floats use Rust's shortest round-trip formatting; infinities encode
    /// as `inf`/`-inf` (NaN never occurs by construction).
    pub fn to_text(&self) -> String {
        match self {
            Value::Bool(b) => format!("B:{b}"),
            Value::Int(i) => format!("I:{i}"),
            Value::Float(x) => format!("F:{x}"),
            Value::Str(s) => format!("S:{}", escape(s)),
            Value::Date(d) => format!("D:{d}"),
            Value::Oid(o) => format!("O:{}", o.to_text()),
        }
    }

    /// Parse the [`Value::to_text`] encoding.
    pub fn from_text(text: &str) -> Result<Value, CodecError> {
        let (tag, body) = text
            .split_once(':')
            .ok_or_else(|| CodecError::new(format!("missing type tag in {text:?}")))?;
        let bad = |what: &str| CodecError::new(format!("bad {what} in {text:?}"));
        match tag {
            "B" => match body {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                _ => Err(bad("bool")),
            },
            "I" => body.parse().map(Value::Int).map_err(|_| bad("int")),
            "F" => {
                let x: f64 = body.parse().map_err(|_| bad("float"))?;
                if x.is_nan() {
                    Err(bad("float (NaN is not a value)"))
                } else {
                    Ok(Value::Float(x))
                }
            }
            "S" => Ok(Value::Str(Arc::from(unescape(body)?.as_str()))),
            "D" => body.parse().map(Value::Date).map_err(|_| bad("date")),
            "O" => Oid::from_text(body).map(Value::Oid),
            _ => Err(bad("type tag")),
        }
    }

    /// Total comparison used by conditions and ORDER-style operations.
    ///
    /// Numbers compare numerically across `Int`/`Float`; otherwise values of
    /// different types compare by a fixed type order so sorting is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) { return a.partial_cmp(&b).unwrap_or(Ordering::Equal) }
        let rank = |v: &Value| match v {
            Value::Bool(_) => 0u8,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Date(_) => 2,
            Value::Str(_) => 3,
            Value::Oid(_) => 4,
        };
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => match (self, other) {
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                (Value::Date(a), Value::Date(b)) => a.cmp(b),
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                (Value::Oid(a), Value::Oid(b)) => a.cmp(b),
                _ => Ordering::Equal,
            },
            o => o,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            // Cross numeric equality: 1 == 1.0, as in SQL and Vadalog.
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                *a as f64 == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Oid(a), Value::Oid(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Bool(b) => {
                state.write_u8(0);
                b.hash(state);
            }
            // Ints and integral floats must hash identically because they
            // compare equal. Non-integral floats hash by bits.
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    state.write_u8(1);
                    state.write_i64(*f as i64);
                } else {
                    state.write_u8(2);
                    state.write_u64(f.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Date(d) => {
                state.write_u8(4);
                state.write_i32(*d);
            }
            Value::Oid(o) => {
                state.write_u8(5);
                o.hash(state);
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Date(d) => write!(f, "date({d})"),
            Value::Oid(o) => write!(f, "{o:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            other => fmt::Debug::fmt(other, f),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}
impl From<Oid> for Value {
    fn from(o: Oid) -> Self {
        Value::Oid(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fx_hash_one;
    use crate::oid::OidSpace;

    #[test]
    fn cross_numeric_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(fx_hash_one(&a), fx_hash_one(&b));
    }

    #[test]
    fn non_integral_floats_are_distinct() {
        assert_ne!(Value::Float(0.5), Value::Int(0));
        assert_ne!(Value::Float(0.5), Value::Float(0.25));
    }

    #[test]
    fn total_cmp_orders_numbers_numerically() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
    }

    #[test]
    fn total_cmp_is_total_across_types() {
        let vals = [
            Value::Bool(true),
            Value::Int(0),
            Value::str("a"),
            Value::Date(10),
            Value::Oid(Oid::ground(1)),
        ];
        for a in &vals {
            for b in &vals {
                // antisymmetry
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
        }
    }

    #[test]
    fn labelled_null_detection() {
        assert!(Value::Oid(Oid::new(OidSpace::Null, 9)).is_labelled_null());
        assert!(!Value::Oid(Oid::ground(9)).is_labelled_null());
        assert!(!Value::Int(9).is_labelled_null());
    }

    #[test]
    fn value_type_parse_round_trip() {
        for ty in [
            ValueType::Bool,
            ValueType::Int,
            ValueType::Float,
            ValueType::Str,
            ValueType::Date,
            ValueType::Oid,
        ] {
            assert_eq!(ValueType::parse(&ty.to_string()), Some(ty));
        }
        assert_eq!(ValueType::parse("blob"), None);
    }

    #[test]
    fn display_strings_are_unquoted() {
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(format!("{:?}", Value::str("abc")), "\"abc\"");
    }

    #[test]
    fn text_codec_round_trips_every_variant() {
        let vals = [
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.5),
            Value::Float(-1.0e300),
            Value::Float(f64::INFINITY),
            Value::Float(1.0 / 3.0), // needs shortest-round-trip formatting
            Value::str(""),
            Value::str("plain"),
            Value::str("pipe|newline\nback\\slash"),
            Value::Date(18_000),
            Value::Date(-15_000),
            Value::Oid(Oid::ground(7)),
            Value::Oid(Oid::new(OidSpace::Null, 3)),
            Value::Oid(Oid::new(OidSpace::Skolem, 9)),
        ];
        for v in &vals {
            let text = v.to_text();
            assert!(!text.contains('\n') && !text.contains('|'), "{text:?}");
            let back = Value::from_text(&text).unwrap();
            // Bitwise identity, stricter than PartialEq's 1 == 1.0.
            assert_eq!(back.value_type(), v.value_type(), "{text}");
            assert_eq!(&back, v, "{text}");
        }
    }

    #[test]
    fn text_codec_rejects_malformed_input() {
        for bad in [
            "", "B", "B:yes", "I:1.5", "F:abc", "F:NaN", "D:x", "O:Z1", "Q:1", "S:\\q",
        ] {
            assert!(Value::from_text(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn value_size_is_small() {
        // Hot type: keep it within three words (Arc<str> is 2 words + tag).
        assert!(std::mem::size_of::<Value>() <= 24);
    }
}
