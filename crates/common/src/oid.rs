//! Object identifiers for every construct and instance in the KGModel stack.
//!
//! Section 3.1: *"Each meta-construct is identified by a unique internal
//! Object Identifier (OID)."* The same holds one level down for
//! super-constructs, model constructs, schema elements and instance
//! elements. Reasoning additionally introduces *labelled nulls* (the set
//! `N` of Section 4) and *linker Skolem values* (the set `I`), which the
//! paper requires to be disjoint from constants and from each other.
//!
//! We realize the disjointness by tagging the two most significant bits of a
//! 64-bit identifier with an [`OidSpace`].

use crate::codec::CodecError;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The identifier space an [`Oid`] belongs to.
///
/// The paper's three disjoint symbol pools: ground constants/objects (`C`),
/// labelled nulls (`N`), and linker-Skolem values (`I`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OidSpace {
    /// Ground objects loaded from or created in a store.
    Ground,
    /// Fresh labelled nulls invented by the chase for existential variables.
    Null,
    /// Values minted by injective, range-disjoint linker Skolem functors.
    Skolem,
}

const SPACE_SHIFT: u32 = 62;
const PAYLOAD_MASK: u64 = (1 << SPACE_SHIFT) - 1;

/// A 64-bit object identifier: 2 tag bits for the [`OidSpace`], 62 payload bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(u64);

impl Oid {
    /// Construct an OID from a space tag and payload.
    ///
    /// # Panics
    /// Panics if `payload` does not fit in 62 bits.
    pub fn new(space: OidSpace, payload: u64) -> Self {
        assert!(payload <= PAYLOAD_MASK, "OID payload overflow");
        let tag = match space {
            OidSpace::Ground => 0u64,
            OidSpace::Null => 1,
            OidSpace::Skolem => 2,
        };
        Oid((tag << SPACE_SHIFT) | payload)
    }

    /// Ground-space OID with the given payload.
    pub fn ground(payload: u64) -> Self {
        Oid::new(OidSpace::Ground, payload)
    }

    /// The space this OID belongs to.
    pub fn space(self) -> OidSpace {
        match self.0 >> SPACE_SHIFT {
            0 => OidSpace::Ground,
            1 => OidSpace::Null,
            2 => OidSpace::Skolem,
            _ => unreachable!("reserved OID space tag"),
        }
    }

    /// The 62-bit payload.
    pub fn payload(self) -> u64 {
        self.0 & PAYLOAD_MASK
    }

    /// Raw 64-bit representation (tag + payload), useful as a map key.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from [`Oid::raw`].
    pub fn from_raw(raw: u64) -> Self {
        let oid = Oid(raw);
        // Force validation of the tag.
        let _ = oid.space();
        oid
    }

    /// True if this OID denotes a labelled null (an "unknown" object).
    pub fn is_null(self) -> bool {
        self.space() == OidSpace::Null
    }

    /// Compact ASCII encoding: a space letter (`G`/`N`/`K`) followed by the
    /// decimal payload, e.g. `G7`, `N12`, `K3`. Round-trips through
    /// [`Oid::from_text`].
    pub fn to_text(self) -> String {
        let tag = match self.space() {
            OidSpace::Ground => 'G',
            OidSpace::Null => 'N',
            OidSpace::Skolem => 'K',
        };
        format!("{tag}{}", self.payload())
    }

    /// Parse the [`Oid::to_text`] encoding.
    pub fn from_text(text: &str) -> Result<Oid, CodecError> {
        let mut chars = text.chars();
        let space = match chars.next() {
            Some('G') => OidSpace::Ground,
            Some('N') => OidSpace::Null,
            Some('K') => OidSpace::Skolem,
            _ => return Err(CodecError::new(format!("bad OID space tag in {text:?}"))),
        };
        let payload: u64 = chars
            .as_str()
            .parse()
            .map_err(|_| CodecError::new(format!("bad OID payload in {text:?}")))?;
        if payload > PAYLOAD_MASK {
            return Err(CodecError::new(format!("OID payload overflow in {text:?}")));
        }
        Ok(Oid::new(space, payload))
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.space() {
            OidSpace::Ground => write!(f, "#{}", self.payload()),
            OidSpace::Null => write!(f, "ν{}", self.payload()),
            OidSpace::Skolem => write!(f, "σ{}", self.payload()),
        }
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A thread-safe monotone OID generator for one [`OidSpace`].
#[derive(Debug)]
pub struct OidGen {
    space: OidSpace,
    next: AtomicU64,
}

impl OidGen {
    /// A generator starting at payload 1 (0 is reserved for "anonymous").
    pub fn new(space: OidSpace) -> Self {
        OidGen {
            space,
            next: AtomicU64::new(1),
        }
    }

    /// A generator that continues a previous one: the next [`fresh`] call
    /// mints payload `minted + 1`, where `minted` is the prior generator's
    /// [`count`]. Resuming an incremental chase must not re-mint payloads
    /// already embedded in stored facts.
    ///
    /// [`fresh`]: OidGen::fresh
    /// [`count`]: OidGen::count
    pub fn resume(space: OidSpace, minted: u64) -> Self {
        OidGen {
            space,
            next: AtomicU64::new(minted + 1),
        }
    }

    /// Mint the next OID.
    pub fn fresh(&self) -> Oid {
        let payload = self.next.fetch_add(1, Ordering::Relaxed);
        Oid::new(self.space, payload)
    }

    /// Number of OIDs minted so far.
    pub fn count(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }
}

impl Default for OidGen {
    fn default() -> Self {
        OidGen::new(OidSpace::Ground)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaces_are_disjoint() {
        let g = Oid::new(OidSpace::Ground, 7);
        let n = Oid::new(OidSpace::Null, 7);
        let s = Oid::new(OidSpace::Skolem, 7);
        assert_ne!(g, n);
        assert_ne!(n, s);
        assert_ne!(g, s);
        assert_eq!(g.payload(), 7);
        assert_eq!(n.payload(), 7);
        assert_eq!(s.payload(), 7);
    }

    #[test]
    fn space_round_trips() {
        for space in [OidSpace::Ground, OidSpace::Null, OidSpace::Skolem] {
            let o = Oid::new(space, 123456);
            assert_eq!(o.space(), space);
            assert_eq!(Oid::from_raw(o.raw()), o);
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn payload_overflow_panics() {
        let _ = Oid::new(OidSpace::Ground, u64::MAX);
    }

    #[test]
    fn generator_is_monotone_and_counts() {
        let g = OidGen::new(OidSpace::Null);
        let a = g.fresh();
        let b = g.fresh();
        assert!(a.payload() < b.payload());
        assert!(a.is_null());
        assert_eq!(g.count(), 2);
    }

    #[test]
    fn resumed_generator_never_remints_prior_payloads() {
        let g = OidGen::new(OidSpace::Null);
        let a = g.fresh();
        let b = g.fresh();
        let resumed = OidGen::resume(OidSpace::Null, g.count());
        assert_eq!(resumed.count(), g.count());
        let c = resumed.fresh();
        assert!(c.payload() > a.payload() && c.payload() > b.payload());
        assert_eq!(resumed.count(), 3);
    }

    #[test]
    fn debug_formats_by_space() {
        assert_eq!(format!("{:?}", Oid::ground(3)), "#3");
        assert_eq!(format!("{:?}", Oid::new(OidSpace::Null, 3)), "ν3");
        assert_eq!(format!("{:?}", Oid::new(OidSpace::Skolem, 3)), "σ3");
    }

    #[test]
    fn text_codec_round_trips_every_space() {
        for space in [OidSpace::Ground, OidSpace::Null, OidSpace::Skolem] {
            for payload in [0u64, 1, 42, PAYLOAD_MASK] {
                let o = Oid::new(space, payload);
                assert_eq!(Oid::from_text(&o.to_text()).unwrap(), o);
            }
        }
        assert_eq!(Oid::ground(7).to_text(), "G7");
    }

    #[test]
    fn text_codec_rejects_malformed_input() {
        assert!(Oid::from_text("").is_err());
        assert!(Oid::from_text("X7").is_err());
        assert!(Oid::from_text("G").is_err());
        assert!(Oid::from_text("Gseven").is_err());
        assert!(Oid::from_text("G-1").is_err());
        assert!(Oid::from_text(&format!("G{}", u64::MAX)).is_err());
    }

    #[test]
    fn generator_is_thread_safe() {
        let g = std::sync::Arc::new(OidGen::new(OidSpace::Ground));
        let mut handles = vec![];
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.fresh().payload()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000, "OIDs must be globally unique");
    }
}
