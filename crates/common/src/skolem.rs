//! Linker Skolem functors (paper Section 4, "Linker Skolem Functors").
//!
//! A MetaLog rule may bind an existential variable to `∃ k = sk(v̄)` where
//! `sk` is a *linker Skolem functor* applied to a tuple of universally
//! quantified variables. The paper requires functors to be
//!
//! 1. **deterministic** — the same functor on the same arguments always
//!    yields the same value (so independent rules can *link up* on shared
//!    derived objects, e.g. the `I_M_Property` of Example 6.1);
//! 2. **injective** — distinct argument tuples yield distinct values;
//! 3. **range disjoint** — the images of distinct functors never overlap,
//!    and all of them are disjoint from constants and labelled nulls.
//!
//! [`SkolemRegistry`] realizes this with a table from
//! `(functor, argument-tuple)` to a fresh OID in [`OidSpace::Skolem`]:
//! determinism and injectivity hold by table lookup, range disjointness holds
//! because the functor id is part of the key and payloads are globally
//! sequential.

use crate::codec::{escape, unescape, CodecError};
use crate::hash::FxHashMap;
use crate::oid::{Oid, OidSpace};
use crate::value::Value;
use kgm_runtime::sync::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named Skolem functor handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkolemFunctor(u32);

impl SkolemFunctor {
    /// Raw functor index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SkolemFunctor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sk{}", self.0)
    }
}

#[derive(Default)]
struct Tables {
    by_name: FxHashMap<String, SkolemFunctor>,
    names: Vec<String>,
    values: FxHashMap<(SkolemFunctor, Vec<Value>), Oid>,
}

/// The process-wide table realizing injective, deterministic, range-disjoint
/// Skolem functors.
pub struct SkolemRegistry {
    tables: Mutex<Tables>,
    next_payload: AtomicU64,
}

impl Default for SkolemRegistry {
    fn default() -> Self {
        SkolemRegistry::new()
    }
}

impl SkolemRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        SkolemRegistry {
            tables: Mutex::new(Tables::default()),
            next_payload: AtomicU64::new(1),
        }
    }

    /// Declare (or look up) the functor named `name`.
    pub fn functor(&self, name: &str) -> SkolemFunctor {
        let mut t = self.tables.lock();
        if let Some(&f) = t.by_name.get(name) {
            return f;
        }
        let f = SkolemFunctor(u32::try_from(t.names.len()).expect("too many functors"));
        t.names.push(name.to_string());
        t.by_name.insert(name.to_string(), f);
        f
    }

    /// Resolve a functor back to its declared name.
    pub fn name(&self, f: SkolemFunctor) -> String {
        self.tables.lock().names[f.0 as usize].clone()
    }

    /// Apply `functor` to `args`, returning the (stable) Skolem OID.
    pub fn apply(&self, functor: SkolemFunctor, args: &[Value]) -> Oid {
        let mut t = self.tables.lock();
        if let Some(&oid) = t.values.get(&(functor, args.to_vec())) {
            return oid;
        }
        let payload = self.next_payload.fetch_add(1, Ordering::Relaxed);
        let oid = Oid::new(OidSpace::Skolem, payload);
        t.values.insert((functor, args.to_vec()), oid);
        oid
    }

    /// Number of distinct Skolem values minted so far.
    pub fn minted(&self) -> u64 {
        self.next_payload.load(Ordering::Relaxed) - 1
    }

    /// Dump the whole registry as line-oriented text: one `functor|<name>`
    /// line per declared functor (in declaration order) and one
    /// `value|<functor-index>|<oid>|<arg>|<arg>…` line per minted Skolem
    /// value, sorted by OID so the output is deterministic. Restores through
    /// [`SkolemRegistry::from_text`] with identical functor indices, OIDs
    /// and future-mint behaviour.
    pub fn to_text(&self) -> String {
        let t = self.tables.lock();
        let mut out = String::new();
        for name in &t.names {
            out.push_str("functor|");
            out.push_str(&escape(name));
            out.push('\n');
        }
        let mut rows: Vec<_> = t.values.iter().collect();
        rows.sort_by_key(|(_, oid)| **oid);
        for ((functor, args), oid) in rows {
            out.push_str(&format!("value|{}|{}", functor.0, oid.to_text()));
            for a in args {
                out.push('|');
                out.push_str(&escape(&a.to_text()));
            }
            out.push('\n');
        }
        out
    }

    /// Rebuild a registry from its [`SkolemRegistry::to_text`] dump.
    pub fn from_text(text: &str) -> Result<SkolemRegistry, CodecError> {
        let mut t = Tables::default();
        let mut max_payload = 0u64;
        for (lineno, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let bad = |what: &str| CodecError::new(format!("line {}: {what}", lineno + 1));
            let mut fields = line.split('|');
            match fields.next() {
                Some("functor") => {
                    let name =
                        unescape(fields.next().ok_or_else(|| bad("missing functor name"))?)?;
                    let f = SkolemFunctor(
                        u32::try_from(t.names.len()).map_err(|_| bad("too many functors"))?,
                    );
                    t.names.push(name.clone());
                    t.by_name.insert(name, f);
                }
                Some("value") => {
                    let idx: u32 = fields
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("bad functor index"))?;
                    if idx as usize >= t.names.len() {
                        return Err(bad("functor index out of range"));
                    }
                    let oid =
                        Oid::from_text(fields.next().ok_or_else(|| bad("missing OID"))?)?;
                    if oid.space() != OidSpace::Skolem {
                        return Err(bad("OID outside the Skolem space"));
                    }
                    let args = fields
                        .map(|f| Value::from_text(&unescape(f)?))
                        .collect::<Result<Vec<_>, _>>()?;
                    t.values.insert((SkolemFunctor(idx), args), oid);
                    max_payload = max_payload.max(oid.payload());
                }
                _ => return Err(bad("unknown record kind")),
            }
        }
        Ok(SkolemRegistry {
            tables: Mutex::new(t),
            next_payload: AtomicU64::new(max_payload + 1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_on_same_arguments() {
        let r = SkolemRegistry::new();
        let sk = r.functor("skN");
        let a = r.apply(sk, &[Value::Int(1), Value::str("x")]);
        let b = r.apply(sk, &[Value::Int(1), Value::str("x")]);
        assert_eq!(a, b);
        assert_eq!(r.minted(), 1);
    }

    #[test]
    fn injective_on_distinct_arguments() {
        let r = SkolemRegistry::new();
        let sk = r.functor("skN");
        let a = r.apply(sk, &[Value::Int(1)]);
        let b = r.apply(sk, &[Value::Int(2)]);
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_of_distinct_functors_are_disjoint() {
        let r = SkolemRegistry::new();
        let f = r.functor("skA");
        let g = r.functor("skB");
        let a = r.apply(f, &[Value::Int(1)]);
        let b = r.apply(g, &[Value::Int(1)]);
        assert_ne!(a, b, "images of distinct functors must not overlap");
    }

    #[test]
    fn values_live_in_skolem_space() {
        let r = SkolemRegistry::new();
        let f = r.functor("sk");
        let v = r.apply(f, &[]);
        assert_eq!(v.space(), OidSpace::Skolem);
    }

    #[test]
    fn functor_names_round_trip() {
        let r = SkolemRegistry::new();
        let f = r.functor("skFR");
        assert_eq!(r.functor("skFR"), f);
        assert_eq!(r.name(f), "skFR");
    }

    #[test]
    fn text_dump_round_trips_and_preserves_minting() {
        let r = SkolemRegistry::new();
        let f = r.functor("skA");
        let g = r.functor("sk|weird\nname");
        let a = r.apply(f, &[Value::Int(1), Value::str("x|y")]);
        let b = r.apply(g, &[]);
        let c = r.apply(g, &[Value::Float(0.5), Value::Bool(true)]);

        let restored = SkolemRegistry::from_text(&r.to_text()).unwrap();
        // Same functor indices and names.
        assert_eq!(restored.functor("skA"), f);
        assert_eq!(restored.name(g), "sk|weird\nname");
        // Same stable values for known argument tuples.
        assert_eq!(restored.apply(f, &[Value::Int(1), Value::str("x|y")]), a);
        assert_eq!(restored.apply(g, &[]), b);
        assert_eq!(restored.apply(g, &[Value::Float(0.5), Value::Bool(true)]), c);
        assert_eq!(restored.minted(), r.minted());
        // Fresh tuples keep minting past the restored watermark.
        let fresh = restored.apply(f, &[Value::Int(2)]);
        assert!(fresh.payload() > c.payload());
    }

    #[test]
    fn from_text_rejects_malformed_dumps() {
        assert!(SkolemRegistry::from_text("garbage|x").is_err());
        assert!(SkolemRegistry::from_text("value|0|K1").is_err(), "index before functor");
        assert!(SkolemRegistry::from_text("functor|f\nvalue|0|G1").is_err(), "non-Skolem OID");
        assert!(SkolemRegistry::from_text("functor|f\nvalue|zero|K1").is_err());
        // Empty dump is a valid empty registry.
        assert_eq!(SkolemRegistry::from_text("").unwrap().minted(), 0);
    }

    #[test]
    fn arity_participates_in_identity() {
        let r = SkolemRegistry::new();
        let f = r.functor("sk");
        // sk() vs sk(unit-ish) must differ.
        let a = r.apply(f, &[]);
        let b = r.apply(f, &[Value::Int(0)]);
        assert_ne!(a, b);
    }
}
