//! Linker Skolem functors (paper Section 4, "Linker Skolem Functors").
//!
//! A MetaLog rule may bind an existential variable to `∃ k = sk(v̄)` where
//! `sk` is a *linker Skolem functor* applied to a tuple of universally
//! quantified variables. The paper requires functors to be
//!
//! 1. **deterministic** — the same functor on the same arguments always
//!    yields the same value (so independent rules can *link up* on shared
//!    derived objects, e.g. the `I_M_Property` of Example 6.1);
//! 2. **injective** — distinct argument tuples yield distinct values;
//! 3. **range disjoint** — the images of distinct functors never overlap,
//!    and all of them are disjoint from constants and labelled nulls.
//!
//! [`SkolemRegistry`] realizes this with a table from
//! `(functor, argument-tuple)` to a fresh OID in [`OidSpace::Skolem`]:
//! determinism and injectivity hold by table lookup, range disjointness holds
//! because the functor id is part of the key and payloads are globally
//! sequential.

use crate::hash::FxHashMap;
use crate::oid::{Oid, OidSpace};
use crate::value::Value;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named Skolem functor handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkolemFunctor(u32);

impl SkolemFunctor {
    /// Raw functor index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SkolemFunctor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sk{}", self.0)
    }
}

#[derive(Default)]
struct Tables {
    by_name: FxHashMap<String, SkolemFunctor>,
    names: Vec<String>,
    values: FxHashMap<(SkolemFunctor, Vec<Value>), Oid>,
}

/// The process-wide table realizing injective, deterministic, range-disjoint
/// Skolem functors.
pub struct SkolemRegistry {
    tables: Mutex<Tables>,
    next_payload: AtomicU64,
}

impl Default for SkolemRegistry {
    fn default() -> Self {
        SkolemRegistry::new()
    }
}

impl SkolemRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        SkolemRegistry {
            tables: Mutex::new(Tables::default()),
            next_payload: AtomicU64::new(1),
        }
    }

    /// Declare (or look up) the functor named `name`.
    pub fn functor(&self, name: &str) -> SkolemFunctor {
        let mut t = self.tables.lock();
        if let Some(&f) = t.by_name.get(name) {
            return f;
        }
        let f = SkolemFunctor(u32::try_from(t.names.len()).expect("too many functors"));
        t.names.push(name.to_string());
        t.by_name.insert(name.to_string(), f);
        f
    }

    /// Resolve a functor back to its declared name.
    pub fn name(&self, f: SkolemFunctor) -> String {
        self.tables.lock().names[f.0 as usize].clone()
    }

    /// Apply `functor` to `args`, returning the (stable) Skolem OID.
    pub fn apply(&self, functor: SkolemFunctor, args: &[Value]) -> Oid {
        let mut t = self.tables.lock();
        if let Some(&oid) = t.values.get(&(functor, args.to_vec())) {
            return oid;
        }
        let payload = self.next_payload.fetch_add(1, Ordering::Relaxed);
        let oid = Oid::new(OidSpace::Skolem, payload);
        t.values.insert((functor, args.to_vec()), oid);
        oid
    }

    /// Number of distinct Skolem values minted so far.
    pub fn minted(&self) -> u64 {
        self.next_payload.load(Ordering::Relaxed) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_on_same_arguments() {
        let r = SkolemRegistry::new();
        let sk = r.functor("skN");
        let a = r.apply(sk, &[Value::Int(1), Value::str("x")]);
        let b = r.apply(sk, &[Value::Int(1), Value::str("x")]);
        assert_eq!(a, b);
        assert_eq!(r.minted(), 1);
    }

    #[test]
    fn injective_on_distinct_arguments() {
        let r = SkolemRegistry::new();
        let sk = r.functor("skN");
        let a = r.apply(sk, &[Value::Int(1)]);
        let b = r.apply(sk, &[Value::Int(2)]);
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_of_distinct_functors_are_disjoint() {
        let r = SkolemRegistry::new();
        let f = r.functor("skA");
        let g = r.functor("skB");
        let a = r.apply(f, &[Value::Int(1)]);
        let b = r.apply(g, &[Value::Int(1)]);
        assert_ne!(a, b, "images of distinct functors must not overlap");
    }

    #[test]
    fn values_live_in_skolem_space() {
        let r = SkolemRegistry::new();
        let f = r.functor("sk");
        let v = r.apply(f, &[]);
        assert_eq!(v.space(), OidSpace::Skolem);
    }

    #[test]
    fn functor_names_round_trip() {
        let r = SkolemRegistry::new();
        let f = r.functor("skFR");
        assert_eq!(r.functor("skFR"), f);
        assert_eq!(r.name(f), "skFR");
    }

    #[test]
    fn arity_participates_in_identity() {
        let r = SkolemRegistry::new();
        let f = r.functor("sk");
        // sk() vs sk(unit-ish) must differ.
        let a = r.apply(f, &[]);
        let b = r.apply(f, &[Value::Int(0)]);
        assert_ne!(a, b);
    }
}
