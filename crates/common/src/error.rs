//! Error types shared across the KGModel workspace.

use std::fmt;

/// Convenience alias used by every KGModel crate.
pub type Result<T> = std::result::Result<T, KgmError>;

/// The unified error type of the KGModel workspace.
///
/// Subsystems wrap their failures in the variant matching their layer so
/// callers composing a pipeline (parse → analyze → translate → reason →
/// enforce) can report where the pipeline broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KgmError {
    /// A language-level parse error (GSL, MetaLog, Vadalog).
    Parse {
        /// Which language failed to parse.
        language: &'static str,
        /// Human-readable description with position information.
        message: String,
    },
    /// A static-analysis rejection (wardedness, stratification, star-in-recursion).
    Analysis(String),
    /// Schema-level violation: invalid super-schema or model schema.
    Schema(String),
    /// Constraint violation raised by a store (unique, key, foreign key, domain).
    Constraint(String),
    /// Lookup of a missing object (OID, predicate, table, label...).
    NotFound(String),
    /// A translation (MTV / SSST / view generation) failed.
    Translation(String),
    /// The reasoner exceeded a safety bound (null depth, iteration cap).
    ResourceExhausted(String),
    /// A run was cooperatively cancelled (via a `CancelToken`) while the
    /// caller had opted into strict erroring.
    Cancelled(String),
    /// Type mismatch between values.
    Type(String),
    /// Catch-all for invariants that should never break.
    Internal(String),
}

impl KgmError {
    /// Build a parse error for `language` at a given position.
    pub fn parse(language: &'static str, message: impl Into<String>) -> Self {
        KgmError::Parse {
            language,
            message: message.into(),
        }
    }
}

impl fmt::Display for KgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgmError::Parse { language, message } => {
                write!(f, "{language} parse error: {message}")
            }
            KgmError::Analysis(m) => write!(f, "program analysis error: {m}"),
            KgmError::Schema(m) => write!(f, "schema error: {m}"),
            KgmError::Constraint(m) => write!(f, "constraint violation: {m}"),
            KgmError::NotFound(m) => write!(f, "not found: {m}"),
            KgmError::Translation(m) => write!(f, "translation error: {m}"),
            KgmError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            KgmError::Cancelled(m) => write!(f, "cancelled: {m}"),
            KgmError::Type(m) => write!(f, "type error: {m}"),
            KgmError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for KgmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_and_message() {
        let e = KgmError::parse("MetaLog", "unexpected token at 1:4");
        assert_eq!(e.to_string(), "MetaLog parse error: unexpected token at 1:4");
        let e = KgmError::Constraint("unique(fiscalCode)".into());
        assert!(e.to_string().contains("unique(fiscalCode)"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            KgmError::NotFound("x".into()),
            KgmError::NotFound("x".into())
        );
        assert_ne!(KgmError::NotFound("x".into()), KgmError::Schema("x".into()));
    }
}
