//! # kgm-pgstore
//!
//! An in-memory **property-graph database** — the storage substrate of
//! KGModel. The paper deploys its *graph dictionaries* (serialized
//! super-model and model instances, Section 2.2) and its PG-model targets on
//! graph DBMSs such as Neo4j; this crate provides the equivalent engine:
//!
//! - multi-label nodes and single-label edges with typed properties
//!   (the regular PG definition of Section 4: `G = (N, E, μ, λ, σ)`);
//! - label and unique-property indexes with constraint enforcement
//!   (the §5.2 PG model supports node multi-tagging and uniqueness
//!   constraints on attributes);
//! - a structural pattern-matching API used to execute the `@input`
//!   bindings that MTV generates (Example 4.4), plus a parser/executor for
//!   the small Cypher fragment those annotations are written in;
//! - graph algorithms used for the Section 2.1 topology statistics:
//!   Tarjan SCC, union-find WCC, clustering coefficient, degree statistics
//!   and a power-law exponent estimator.

pub mod algo;
pub mod csv;
pub mod cypher;
pub mod graph;
pub mod pattern;
pub mod stats;

pub use graph::{Direction, EdgeId, NodeId, PropertyGraph};
pub use pattern::{EdgePattern, NodePattern, PathPattern, TripleMatch};
pub use stats::{degree_distribution_table, in_degree_histogram, GraphStats};
