//! The property-graph store.
//!
//! Implements the regular property graph of Section 4 of the paper:
//! `G = (N, E, μ, λ, σ)` with a total incidence function `μ : E → N²`, a
//! labelling function `λ` (here: multi-label on nodes as in the §5.2 PG
//! model, single label on edges so edge atoms have one type), and a property
//! function `σ`.
//!
//! Nodes and edges are stored in dense arenas indexed by [`NodeId`]/[`EdgeId`]
//! with tombstone deletion; every element additionally carries a stable
//! external [`Oid`] (the paper assumes *"every node has an internal OID"* in
//! the PG-to-relational mapping, Section 4 step (1)).

use kgm_common::{FxHashMap, Interner, KgmError, Oid, OidGen, Result, Symbol, Value};
use std::sync::Arc;

/// Dense node handle, valid only within the owning [`PropertyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Dense edge handle, valid only within the owning [`PropertyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// Traversal direction for adjacency queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from source to target.
    Outgoing,
    /// Follow edges from target to source.
    Incoming,
    /// Follow edges both ways (semi-path traversal, Section 4).
    Both,
}

#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub oid: Oid,
    pub labels: Vec<Symbol>,
    pub props: Vec<(Symbol, Value)>,
    pub out: Vec<EdgeId>,
    pub inc: Vec<EdgeId>,
    pub alive: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct EdgeData {
    pub oid: Oid,
    pub label: Symbol,
    pub from: NodeId,
    pub to: NodeId,
    pub props: Vec<(Symbol, Value)>,
    pub alive: bool,
}

/// An in-memory property graph with label indexes and unique constraints.
pub struct PropertyGraph {
    interner: Arc<Interner>,
    oid_gen: OidGen,
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    node_label_index: FxHashMap<Symbol, Vec<NodeId>>,
    edge_label_index: FxHashMap<Symbol, Vec<EdgeId>>,
    oid_to_node: FxHashMap<Oid, NodeId>,
    oid_to_edge: FxHashMap<Oid, EdgeId>,
    /// (label, property) → value → node, for unique-property constraints.
    unique: FxHashMap<(Symbol, Symbol), FxHashMap<Value, NodeId>>,
    live_nodes: usize,
    live_edges: usize,
}

impl Default for PropertyGraph {
    fn default() -> Self {
        PropertyGraph::new()
    }
}

impl PropertyGraph {
    /// Create an empty graph with its own interner.
    pub fn new() -> Self {
        PropertyGraph::with_interner(Arc::new(Interner::new()))
    }

    /// Create an empty graph sharing an existing interner (so symbols are
    /// comparable across graphs, e.g. dictionary ↔ instance graphs).
    pub fn with_interner(interner: Arc<Interner>) -> Self {
        PropertyGraph {
            interner,
            oid_gen: OidGen::default(),
            nodes: Vec::new(),
            edges: Vec::new(),
            node_label_index: FxHashMap::default(),
            edge_label_index: FxHashMap::default(),
            oid_to_node: FxHashMap::default(),
            oid_to_edge: FxHashMap::default(),
            unique: FxHashMap::default(),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Intern a label/property name.
    pub fn sym(&self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolve a symbol to text.
    pub fn sym_name(&self, s: Symbol) -> String {
        self.interner.resolve(s).to_string()
    }

    // ------------------------------------------------------------------
    // Constraints
    // ------------------------------------------------------------------

    /// Declare a uniqueness constraint on `property` among nodes labelled
    /// `label` (the `SM_UniqueAttributeModifier` of the paper, rendered as a
    /// `UniquePropertyModifier` in the PG model of §5.2).
    ///
    /// Fails if existing data violates it.
    pub fn add_unique_constraint(&mut self, label: &str, property: &str) -> Result<()> {
        let l = self.sym(label);
        let p = self.sym(property);
        let mut index: FxHashMap<Value, NodeId> = FxHashMap::default();
        for (id, n) in self.iter_node_data() {
            if n.labels.contains(&l) {
                if let Some(v) = prop_of(&n.props, p) {
                    if let Some(prev) = index.insert(v.clone(), id) {
                        return Err(KgmError::Constraint(format!(
                            "unique({label}.{property}) violated by nodes {prev:?} and {id:?}"
                        )));
                    }
                }
            }
        }
        self.unique.insert((l, p), index);
        Ok(())
    }

    /// The declared unique constraints as (label, property) names.
    pub fn unique_constraints(&self) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = self
            .unique
            .keys()
            .map(|(l, p)| (self.sym_name(*l), self.sym_name(*p)))
            .collect();
        v.sort();
        v
    }

    fn check_unique_on_insert(
        &self,
        labels: &[Symbol],
        props: &[(Symbol, Value)],
    ) -> Result<()> {
        for ((cl, cp), index) in &self.unique {
            if labels.contains(cl) {
                if let Some(v) = prop_of(props, *cp) {
                    if let Some(prev) = index.get(v) {
                        return Err(KgmError::Constraint(format!(
                            "unique({}.{}) violated: value {v:?} already on node {prev:?}",
                            self.sym_name(*cl),
                            self.sym_name(*cp)
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Add a node with `labels` and `props`. Returns its dense id.
    pub fn add_node<L, P>(&mut self, labels: L, props: P) -> Result<NodeId>
    where
        L: IntoIterator,
        L::Item: AsRef<str>,
        P: IntoIterator<Item = (String, Value)>,
    {
        let labels: Vec<Symbol> = labels.into_iter().map(|l| self.sym(l.as_ref())).collect();
        let props: Vec<(Symbol, Value)> = props
            .into_iter()
            .map(|(k, v)| (self.sym(&k), v))
            .collect();
        self.check_unique_on_insert(&labels, &props)?;
        let oid = self.oid_gen.fresh();
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node arena overflow"));
        for &l in &labels {
            self.node_label_index.entry(l).or_default().push(id);
        }
        for ((cl, cp), index) in &mut self.unique {
            if labels.contains(cl) {
                if let Some(v) = prop_of(&props, *cp) {
                    index.insert(v.clone(), id);
                }
            }
        }
        self.oid_to_node.insert(oid, id);
        self.nodes.push(NodeData {
            oid,
            labels,
            props,
            out: Vec::new(),
            inc: Vec::new(),
            alive: true,
        });
        self.live_nodes += 1;
        Ok(id)
    }

    /// Add an edge `from -[label]-> to`.
    pub fn add_edge<P>(&mut self, from: NodeId, to: NodeId, label: &str, props: P) -> Result<EdgeId>
    where
        P: IntoIterator<Item = (String, Value)>,
    {
        if !self.is_live_node(from) {
            return Err(KgmError::NotFound(format!("edge source {from:?}")));
        }
        if !self.is_live_node(to) {
            return Err(KgmError::NotFound(format!("edge target {to:?}")));
        }
        let label = self.sym(label);
        let props: Vec<(Symbol, Value)> = props
            .into_iter()
            .map(|(k, v)| (self.sym(&k), v))
            .collect();
        let oid = self.oid_gen.fresh();
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge arena overflow"));
        self.edges.push(EdgeData {
            oid,
            label,
            from,
            to,
            props,
            alive: true,
        });
        self.nodes[from.0 as usize].out.push(id);
        self.nodes[to.0 as usize].inc.push(id);
        self.edge_label_index.entry(label).or_default().push(id);
        self.oid_to_edge.insert(oid, id);
        self.live_edges += 1;
        Ok(id)
    }

    /// Remove an edge (tombstone).
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<()> {
        let e = self
            .edges
            .get_mut(id.0 as usize)
            .filter(|e| e.alive)
            .ok_or_else(|| KgmError::NotFound(format!("{id:?}")))?;
        e.alive = false;
        let oid = e.oid;
        self.oid_to_edge.remove(&oid);
        self.live_edges -= 1;
        Ok(())
    }

    /// Remove a node and all its incident edges (tombstone).
    pub fn remove_node(&mut self, id: NodeId) -> Result<()> {
        if !self.is_live_node(id) {
            return Err(KgmError::NotFound(format!("{id:?}")));
        }
        let incident: Vec<EdgeId> = self.nodes[id.0 as usize]
            .out
            .iter()
            .chain(self.nodes[id.0 as usize].inc.iter())
            .copied()
            .collect();
        for e in incident {
            if self.edges[e.0 as usize].alive {
                self.remove_edge(e)?;
            }
        }
        // Drop from unique indexes.
        let (labels, props) = {
            let n = &self.nodes[id.0 as usize];
            (n.labels.clone(), n.props.clone())
        };
        for ((cl, cp), index) in &mut self.unique {
            if labels.contains(cl) {
                if let Some(v) = prop_of(&props, *cp) {
                    index.remove(v);
                }
            }
        }
        let n = &mut self.nodes[id.0 as usize];
        n.alive = false;
        self.oid_to_node.remove(&n.oid.clone());
        self.live_nodes -= 1;
        Ok(())
    }

    /// Set (insert or overwrite) a node property.
    pub fn set_node_prop(&mut self, id: NodeId, key: &str, value: Value) -> Result<()> {
        if !self.is_live_node(id) {
            return Err(KgmError::NotFound(format!("{id:?}")));
        }
        let k = self.sym(key);
        // Unique maintenance.
        let labels = self.nodes[id.0 as usize].labels.clone();
        let old = prop_of(&self.nodes[id.0 as usize].props, k).cloned();
        for ((cl, cp), index) in &mut self.unique {
            if *cp == k && labels.contains(cl) {
                if let Some(prev) = index.get(&value) {
                    if *prev != id {
                        return Err(KgmError::Constraint(format!(
                            "unique constraint violated on value {value:?}"
                        )));
                    }
                }
                if let Some(o) = &old {
                    index.remove(o);
                }
                index.insert(value.clone(), id);
            }
        }
        set_prop(&mut self.nodes[id.0 as usize].props, k, value);
        Ok(())
    }

    /// Set (insert or overwrite) an edge property.
    pub fn set_edge_prop(&mut self, id: EdgeId, key: &str, value: Value) -> Result<()> {
        let k = self.sym(key);
        let e = self
            .edges
            .get_mut(id.0 as usize)
            .filter(|e| e.alive)
            .ok_or_else(|| KgmError::NotFound(format!("{id:?}")))?;
        set_prop(&mut e.props, k, value);
        Ok(())
    }

    /// Add a label to an existing node (multi-tagging, §5.2).
    pub fn add_node_label(&mut self, id: NodeId, label: &str) -> Result<()> {
        if !self.is_live_node(id) {
            return Err(KgmError::NotFound(format!("{id:?}")));
        }
        let l = self.sym(label);
        let n = &mut self.nodes[id.0 as usize];
        if !n.labels.contains(&l) {
            n.labels.push(l);
            self.node_label_index.entry(l).or_default().push(id);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// True if the node id refers to a live node.
    pub fn is_live_node(&self, id: NodeId) -> bool {
        self.nodes.get(id.0 as usize).is_some_and(|n| n.alive)
    }

    /// True if the edge id refers to a live edge.
    pub fn is_live_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.0 as usize).is_some_and(|e| e.alive)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// The stable OID of a node.
    pub fn node_oid(&self, id: NodeId) -> Oid {
        self.nodes[id.0 as usize].oid
    }

    /// The stable OID of an edge.
    pub fn edge_oid(&self, id: EdgeId) -> Oid {
        self.edges[id.0 as usize].oid
    }

    /// Resolve an OID back to its node.
    pub fn node_by_oid(&self, oid: Oid) -> Option<NodeId> {
        self.oid_to_node.get(&oid).copied()
    }

    /// Resolve an OID back to its edge.
    pub fn edge_by_oid(&self, oid: Oid) -> Option<EdgeId> {
        self.oid_to_edge.get(&oid).copied()
    }

    /// The labels of a node, as strings.
    pub fn node_labels(&self, id: NodeId) -> Vec<String> {
        self.nodes[id.0 as usize]
            .labels
            .iter()
            .map(|&l| self.sym_name(l))
            .collect()
    }

    /// The label symbols of a node.
    pub fn node_label_syms(&self, id: NodeId) -> &[Symbol] {
        &self.nodes[id.0 as usize].labels
    }

    /// True if the node carries `label`.
    pub fn node_has_label(&self, id: NodeId, label: &str) -> bool {
        self.interner
            .get(label)
            .is_some_and(|l| self.nodes[id.0 as usize].labels.contains(&l))
    }

    /// The label of an edge, as a string.
    pub fn edge_label(&self, id: EdgeId) -> String {
        self.sym_name(self.edges[id.0 as usize].label)
    }

    /// The label symbol of an edge.
    pub fn edge_label_sym(&self, id: EdgeId) -> Symbol {
        self.edges[id.0 as usize].label
    }

    /// Endpoints `(from, to)` of an edge.
    pub fn edge_endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[id.0 as usize];
        (e.from, e.to)
    }

    /// Read a node property.
    pub fn node_prop(&self, id: NodeId, key: &str) -> Option<&Value> {
        let k = self.interner.get(key)?;
        prop_of(&self.nodes[id.0 as usize].props, k)
    }

    /// Read an edge property.
    pub fn edge_prop(&self, id: EdgeId, key: &str) -> Option<&Value> {
        let k = self.interner.get(key)?;
        prop_of(&self.edges[id.0 as usize].props, k)
    }

    /// All properties of a node as (name, value) pairs.
    pub fn node_props(&self, id: NodeId) -> Vec<(String, Value)> {
        self.nodes[id.0 as usize]
            .props
            .iter()
            .map(|(k, v)| (self.sym_name(*k), v.clone()))
            .collect()
    }

    /// All properties of an edge as (name, value) pairs.
    pub fn edge_props(&self, id: EdgeId) -> Vec<(String, Value)> {
        self.edges[id.0 as usize]
            .props
            .iter()
            .map(|(k, v)| (self.sym_name(*k), v.clone()))
            .collect()
    }

    // ------------------------------------------------------------------
    // Iteration / adjacency
    // ------------------------------------------------------------------

    pub(crate) fn iter_node_data(&self) -> impl Iterator<Item = (NodeId, &NodeData)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterate all live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter_node_data().map(|(id, _)| id)
    }

    /// Iterate all live edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Live nodes carrying `label` (via the label index).
    pub fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        let Some(l) = self.interner.get(label) else {
            return Vec::new();
        };
        self.node_label_index
            .get(&l)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| self.is_live_node(id) && self.nodes[id.0 as usize].labels.contains(&l))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Live edges carrying `label` (via the label index).
    pub fn edges_with_label(&self, label: &str) -> Vec<EdgeId> {
        let Some(l) = self.interner.get(label) else {
            return Vec::new();
        };
        self.edge_label_index
            .get(&l)
            .map(|v| v.iter().copied().filter(|&id| self.is_live_edge(id)).collect())
            .unwrap_or_default()
    }

    /// Live incident edges in `dir`.
    pub fn incident_edges(&self, id: NodeId, dir: Direction) -> Vec<EdgeId> {
        let n = &self.nodes[id.0 as usize];
        let mut out: Vec<EdgeId> = Vec::new();
        if matches!(dir, Direction::Outgoing | Direction::Both) {
            out.extend(n.out.iter().copied().filter(|&e| self.is_live_edge(e)));
        }
        if matches!(dir, Direction::Incoming | Direction::Both) {
            out.extend(n.inc.iter().copied().filter(|&e| self.is_live_edge(e)));
        }
        out
    }

    /// Neighbours of a node in `dir` (deduplicated only by edge, not node).
    pub fn neighbors(&self, id: NodeId, dir: Direction) -> Vec<NodeId> {
        self.incident_edges(id, dir)
            .into_iter()
            .map(|e| {
                let (f, t) = self.edge_endpoints(e);
                if f == id {
                    t
                } else {
                    f
                }
            })
            .collect()
    }

    /// (out-degree, in-degree) of a node, counting live edges.
    pub fn degree(&self, id: NodeId) -> (usize, usize) {
        let n = &self.nodes[id.0 as usize];
        let out = n.out.iter().filter(|&&e| self.is_live_edge(e)).count();
        let inc = n.inc.iter().filter(|&&e| self.is_live_edge(e)).count();
        (out, inc)
    }
}

pub(crate) fn prop_of(props: &[(Symbol, Value)], key: Symbol) -> Option<&Value> {
    props.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn set_prop(props: &mut Vec<(Symbol, Value)>, key: Symbol, value: Value) {
    if let Some(slot) = props.iter_mut().find(|(k, _)| *k == key) {
        slot.1 = value;
    } else {
        props.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props(pairs: &[(&str, Value)]) -> Vec<(String, Value)> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn add_and_read_nodes() {
        let mut g = PropertyGraph::new();
        let n = g
            .add_node(["Business"], props(&[("name", Value::str("ACME"))]))
            .unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.node_labels(n), vec!["Business"]);
        assert_eq!(g.node_prop(n, "name"), Some(&Value::str("ACME")));
        assert_eq!(g.node_prop(n, "missing"), None);
    }

    #[test]
    fn add_and_traverse_edges() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["Person"], props(&[])).unwrap();
        let b = g.add_node(["Business"], props(&[])).unwrap();
        let e = g
            .add_edge(a, b, "OWNS", props(&[("percentage", Value::Float(0.6))]))
            .unwrap();
        assert_eq!(g.edge_label(e), "OWNS");
        assert_eq!(g.edge_endpoints(e), (a, b));
        assert_eq!(g.edge_prop(e, "percentage"), Some(&Value::Float(0.6)));
        assert_eq!(g.neighbors(a, Direction::Outgoing), vec![b]);
        assert_eq!(g.neighbors(b, Direction::Incoming), vec![a]);
        assert_eq!(g.neighbors(a, Direction::Incoming), vec![]);
        assert_eq!(g.degree(a), (1, 0));
        assert_eq!(g.degree(b), (0, 1));
    }

    #[test]
    fn label_index_tracks_multi_labels() {
        let mut g = PropertyGraph::new();
        let n = g.add_node(["Business"], props(&[])).unwrap();
        g.add_node_label(n, "LegalPerson").unwrap();
        g.add_node_label(n, "Person").unwrap();
        assert!(g.node_has_label(n, "Person"));
        assert_eq!(g.nodes_with_label("LegalPerson"), vec![n]);
        // Adding an existing label is a no-op.
        g.add_node_label(n, "Person").unwrap();
        assert_eq!(g.nodes_with_label("Person"), vec![n]);
    }

    #[test]
    fn unique_constraint_rejects_duplicates() {
        let mut g = PropertyGraph::new();
        g.add_unique_constraint("Person", "fiscalCode").unwrap();
        g.add_node(
            ["Person"],
            props(&[("fiscalCode", Value::str("AAA"))]),
        )
        .unwrap();
        let err = g
            .add_node(["Person"], props(&[("fiscalCode", Value::str("AAA"))]))
            .unwrap_err();
        assert!(matches!(err, KgmError::Constraint(_)));
        // Different label is unaffected.
        g.add_node(["Place"], props(&[("fiscalCode", Value::str("AAA"))]))
            .unwrap();
    }

    #[test]
    fn unique_constraint_on_existing_data() {
        let mut g = PropertyGraph::new();
        g.add_node(["P"], props(&[("k", Value::Int(1))])).unwrap();
        g.add_node(["P"], props(&[("k", Value::Int(1))])).unwrap();
        assert!(g.add_unique_constraint("P", "k").is_err());
        assert!(g.unique_constraints().is_empty());
    }

    #[test]
    fn set_prop_respects_unique() {
        let mut g = PropertyGraph::new();
        g.add_unique_constraint("P", "k").unwrap();
        let a = g.add_node(["P"], props(&[("k", Value::Int(1))])).unwrap();
        let b = g.add_node(["P"], props(&[("k", Value::Int(2))])).unwrap();
        assert!(g.set_node_prop(b, "k", Value::Int(1)).is_err());
        // Setting a node's own value again is fine.
        g.set_node_prop(a, "k", Value::Int(1)).unwrap();
        // Moving to a free value frees the old one.
        g.set_node_prop(a, "k", Value::Int(3)).unwrap();
        g.set_node_prop(b, "k", Value::Int(1)).unwrap();
    }

    #[test]
    fn remove_node_removes_incident_edges_and_unique_entries() {
        let mut g = PropertyGraph::new();
        g.add_unique_constraint("P", "k").unwrap();
        let a = g.add_node(["P"], props(&[("k", Value::Int(1))])).unwrap();
        let b = g.add_node(["P"], props(&[("k", Value::Int(2))])).unwrap();
        g.add_edge(a, b, "R", props(&[])).unwrap();
        g.add_edge(b, a, "R", props(&[])).unwrap();
        g.remove_node(a).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.neighbors(b, Direction::Both).is_empty());
        // The value 1 is free again.
        g.add_node(["P"], props(&[("k", Value::Int(1))])).unwrap();
    }

    #[test]
    fn oid_round_trip() {
        let mut g = PropertyGraph::new();
        let n = g.add_node(["X"], props(&[])).unwrap();
        let o = g.node_oid(n);
        assert_eq!(g.node_by_oid(o), Some(n));
        g.remove_node(n).unwrap();
        assert_eq!(g.node_by_oid(o), None);
    }

    #[test]
    fn edges_with_label_filters_dead() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["X"], props(&[])).unwrap();
        let b = g.add_node(["X"], props(&[])).unwrap();
        let e1 = g.add_edge(a, b, "R", props(&[])).unwrap();
        let e2 = g.add_edge(a, b, "R", props(&[])).unwrap();
        g.remove_edge(e1).unwrap();
        assert_eq!(g.edges_with_label("R"), vec![e2]);
        assert_eq!(g.edges_with_label("MISSING"), vec![]);
    }

    #[test]
    fn edge_to_dead_node_is_rejected() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["X"], props(&[])).unwrap();
        let b = g.add_node(["X"], props(&[])).unwrap();
        g.remove_node(b).unwrap();
        assert!(g.add_edge(a, b, "R", props(&[])).is_err());
    }
}
