//! A minimal Cypher fragment: the language of `@input` annotations.
//!
//! MTV (Section 4) emits bindings like
//!
//! ```text
//! @input(SM_PARENT, "(n:SM_Node)-[p:SM_PARENT]->(g:SM_Generalization) return (p,g,n)").
//! ```
//!
//! for graph targets. This module parses and executes exactly that fragment —
//! a single node pattern or a single triple pattern with an optional inverse
//! arrow, followed by a `return` list — so the generated annotations are not
//! just display strings but runnable queries against [`PropertyGraph`].

use crate::graph::{Direction, PropertyGraph};
use crate::pattern::{EdgePattern, NodePattern};
use kgm_common::{KgmError, Result, Value};

/// A parsed `@input` query.
#[derive(Debug, Clone, PartialEq)]
pub enum CypherQuery {
    /// `(v:Label) return v`
    NodeScan {
        /// The node variable.
        var: String,
        /// The node label (optional: `(v)` scans everything).
        label: Option<String>,
        /// Returned variables (must all equal `var`).
        returns: Vec<String>,
    },
    /// `(a:L)-[e:R]->(b:M) return (e,a,b)` or the `<-[...]-` inverse form.
    TripleScan {
        /// Source variable and label.
        src: (String, Option<String>),
        /// Edge variable and label.
        edge: (String, Option<String>),
        /// Target variable and label.
        dst: (String, Option<String>),
        /// True for `<-[...]-` (edge physically points dst → src).
        inverted: bool,
        /// Returned variables in order.
        returns: Vec<String>,
    },
}

struct Scanner<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner { text, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.text[self.pos..].starts_with(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(KgmError::parse(
                "Cypher",
                format!("expected `{tok}` at byte {} in {:?}", self.pos, self.text),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        for (i, c) in self.text[start..].char_indices() {
            if c.is_alphanumeric() || c == '_' {
                self.pos = start + i + c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(KgmError::parse(
                "Cypher",
                format!("expected identifier at byte {start} in {:?}", self.text),
            ))
        } else {
            Ok(self.text[start..self.pos].to_string())
        }
    }

    /// `(var? (:Label)?)`
    fn node_pattern(&mut self) -> Result<(String, Option<String>)> {
        self.expect("(")?;
        self.skip_ws();
        let var = if self.text[self.pos..].starts_with(|c: char| c.is_alphanumeric() || c == '_') {
            self.ident()?
        } else {
            String::new()
        };
        let label = if self.eat(":") {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(")")?;
        Ok((var, label))
    }

    /// `[var? : Label]`
    fn edge_body(&mut self) -> Result<(String, Option<String>)> {
        self.expect("[")?;
        self.skip_ws();
        let var = if self.text[self.pos..].starts_with(|c: char| c.is_alphanumeric() || c == '_') {
            self.ident()?
        } else {
            String::new()
        };
        let label = if self.eat(":") {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect("]")?;
        Ok((var, label))
    }

    fn return_list(&mut self) -> Result<Vec<String>> {
        self.skip_ws();
        // lowercase/uppercase RETURN
        if !(self.eat("return") || self.eat("RETURN")) {
            return Err(KgmError::parse(
                "Cypher",
                format!("expected `return` in {:?}", self.text),
            ));
        }
        let mut out = Vec::new();
        if self.eat("(") {
            loop {
                out.push(self.ident()?);
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(")")?;
        } else {
            out.push(self.ident()?);
            while self.eat(",") {
                out.push(self.ident()?);
            }
        }
        Ok(out)
    }
}

/// Parse an `@input`-style Cypher fragment.
pub fn parse(text: &str) -> Result<CypherQuery> {
    let mut s = Scanner::new(text);
    let src = s.node_pattern()?;
    s.skip_ws();
    let rest = &s.text[s.pos..];
    if rest.starts_with("return") || rest.starts_with("RETURN") {
        let returns = s.return_list()?;
        for r in &returns {
            if *r != src.0 {
                return Err(KgmError::parse(
                    "Cypher",
                    format!("unknown return variable `{r}`"),
                ));
            }
        }
        return Ok(CypherQuery::NodeScan {
            var: src.0,
            label: src.1,
            returns,
        });
    }
    // Edge chain: `-[..]->` or `<-[..]-`.
    let inverted = if s.eat("-") {
        false
    } else if s.eat("<-") {
        true
    } else {
        return Err(KgmError::parse(
            "Cypher",
            format!("expected edge pattern in {:?}", text),
        ));
    };
    let edge = s.edge_body()?;
    if inverted {
        s.expect("-")?;
    } else {
        s.expect("->")?;
    }
    let dst = s.node_pattern()?;
    let returns = s.return_list()?;
    for r in &returns {
        if *r != src.0 && *r != edge.0 && *r != dst.0 {
            return Err(KgmError::parse(
                "Cypher",
                format!("unknown return variable `{r}`"),
            ));
        }
    }
    Ok(CypherQuery::TripleScan {
        src,
        edge,
        dst,
        inverted,
        returns,
    })
}

/// Execute a parsed query, returning one row of OID values per match, in the
/// order of the `return` list.
pub fn run(g: &PropertyGraph, q: &CypherQuery) -> Vec<Vec<Value>> {
    match q {
        CypherQuery::NodeScan { label, returns, .. } => {
            let pat = match label {
                Some(l) => NodePattern::label(l.clone()),
                None => NodePattern::any(),
            };
            g.match_nodes(&pat)
                .into_iter()
                .map(|n| {
                    returns
                        .iter()
                        .map(|_| Value::Oid(g.node_oid(n)))
                        .collect()
                })
                .collect()
        }
        CypherQuery::TripleScan {
            src,
            edge,
            dst,
            inverted,
            returns,
        } => {
            let src_pat = match &src.1 {
                Some(l) => NodePattern::label(l.clone()),
                None => NodePattern::any(),
            };
            let dst_pat = match &dst.1 {
                Some(l) => NodePattern::label(l.clone()),
                None => NodePattern::any(),
            };
            let mut edge_pat = match &edge.1 {
                Some(l) => EdgePattern::label(l.clone()),
                None => EdgePattern::default(),
            };
            if *inverted {
                edge_pat.direction = Direction::Incoming;
            }
            g.match_triples(&src_pat, &edge_pat, &dst_pat)
                .into_iter()
                .map(|m| {
                    returns
                        .iter()
                        .map(|r| {
                            if *r == src.0 {
                                Value::Oid(g.node_oid(m.src))
                            } else if *r == edge.0 {
                                Value::Oid(g.edge_oid(m.edge))
                            } else {
                                Value::Oid(g.node_oid(m.dst))
                            }
                        })
                        .collect()
                })
                .collect()
        }
    }
}

/// Parse and execute in one step.
pub fn query(g: &PropertyGraph, text: &str) -> Result<Vec<Vec<Value>>> {
    Ok(run(g, &parse(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dictionary() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let n1 = g.add_node(["SM_Node"], vec![]).unwrap();
        let n2 = g.add_node(["SM_Node"], vec![]).unwrap();
        let gen = g.add_node(["SM_Generalization"], vec![]).unwrap();
        g.add_edge(n1, gen, "SM_PARENT", vec![]).unwrap();
        g.add_edge(gen, n2, "SM_CHILD", vec![]).unwrap();
        g
    }

    #[test]
    fn parse_node_scan() {
        let q = parse("(n:SM_Node) return n").unwrap();
        assert_eq!(
            q,
            CypherQuery::NodeScan {
                var: "n".into(),
                label: Some("SM_Node".into()),
                returns: vec!["n".into()],
            }
        );
    }

    #[test]
    fn run_node_scan() {
        let g = dictionary();
        let rows = query(&g, "(n:SM_Node) return n").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn parse_and_run_forward_triple() {
        let g = dictionary();
        let rows = query(
            &g,
            "(n:SM_Node)-[p:SM_PARENT]->(g:SM_Generalization) return (p,g,n)",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn parse_and_run_inverted_triple() {
        // The exact annotation of Example 4.4:
        // (n:SM_Node)<-[c:SM_CHILD]-(g:SM_Generalization) return (c,g,n)
        let g = dictionary();
        let rows = query(
            &g,
            "(n:SM_Node)<-[c:SM_CHILD]-(g:SM_Generalization) return (c,g,n)",
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn unknown_return_variable_is_rejected() {
        assert!(parse("(n:SM_Node) return x").is_err());
        assert!(parse("(a:X)-[e:R]->(b:Y) return (a,q)").is_err());
    }

    #[test]
    fn malformed_queries_are_rejected() {
        assert!(parse("n:SM_Node return n").is_err());
        assert!(parse("(n:SM_Node)").is_err());
        assert!(parse("(n:SM_Node)-[e:R](m:Y) return e").is_err());
    }

    #[test]
    fn anonymous_label_scan() {
        let g = dictionary();
        let rows = query(&g, "(n) return n").unwrap();
        assert_eq!(rows.len(), 3);
    }
}
