//! Structural pattern matching over a [`PropertyGraph`].
//!
//! This is the execution backend for the `@input` bindings that MTV
//! generates (Section 4): a PG node atom `(x : L; K)` becomes a
//! [`NodePattern`], a PG edge atom `[x : L; K]` an [`EdgePattern`], and the
//! binary relation `x ρ y` a triple scan. The matcher picks the cheaper side
//! (label-index cardinality) to drive the scan.

use crate::graph::{Direction, EdgeId, NodeId, PropertyGraph};
use kgm_common::Value;

/// A node selection: optional label plus required property equalities.
#[derive(Debug, Clone, Default)]
pub struct NodePattern {
    /// Required node label, if any.
    pub label: Option<String>,
    /// Required `property = constant` equalities.
    pub props: Vec<(String, Value)>,
}

impl NodePattern {
    /// Pattern matching any node with `label`.
    pub fn label(label: impl Into<String>) -> Self {
        NodePattern {
            label: Some(label.into()),
            props: Vec::new(),
        }
    }

    /// Match any node.
    pub fn any() -> Self {
        NodePattern::default()
    }

    /// Add a property equality requirement.
    pub fn with_prop(mut self, key: impl Into<String>, value: Value) -> Self {
        self.props.push((key.into(), value));
        self
    }

    /// Does `node` satisfy this pattern in `g`?
    pub fn matches(&self, g: &PropertyGraph, node: NodeId) -> bool {
        if let Some(l) = &self.label {
            if !g.node_has_label(node, l) {
                return false;
            }
        }
        self.props
            .iter()
            .all(|(k, v)| g.node_prop(node, k) == Some(v))
    }
}

/// An edge selection: optional label plus required property equalities and a
/// traversal direction (inverse atoms `ρ⁻` flip to [`Direction::Incoming`]).
#[derive(Debug, Clone)]
pub struct EdgePattern {
    /// Required edge label, if any.
    pub label: Option<String>,
    /// Required `property = constant` equalities.
    pub props: Vec<(String, Value)>,
    /// Which way the edge is traversed from the source node.
    pub direction: Direction,
}

impl Default for EdgePattern {
    fn default() -> Self {
        EdgePattern {
            label: None,
            props: Vec::new(),
            direction: Direction::Outgoing,
        }
    }
}

impl EdgePattern {
    /// Pattern matching outgoing edges with `label`.
    pub fn label(label: impl Into<String>) -> Self {
        EdgePattern {
            label: Some(label.into()),
            ..Default::default()
        }
    }

    /// Flip the traversal direction (the `−` inverse operator of Section 4).
    pub fn inverse(mut self) -> Self {
        self.direction = match self.direction {
            Direction::Outgoing => Direction::Incoming,
            Direction::Incoming => Direction::Outgoing,
            Direction::Both => Direction::Both,
        };
        self
    }

    /// Add a property equality requirement.
    pub fn with_prop(mut self, key: impl Into<String>, value: Value) -> Self {
        self.props.push((key.into(), value));
        self
    }

    /// Does `edge` satisfy label and property requirements (ignoring
    /// direction, which the scan handles)?
    pub fn matches_edge(&self, g: &PropertyGraph, edge: EdgeId) -> bool {
        if let Some(l) = &self.label {
            if g.edge_label(edge) != *l {
                return false;
            }
        }
        self.props
            .iter()
            .all(|(k, v)| g.edge_prop(edge, k) == Some(v))
    }
}

/// A regular path pattern over edge patterns — the Section 4 regular
/// expressions `ρ | ρ⁻ | R·R | R "|" R | (R)*` evaluated directly on the
/// graph (MTV compiles the same grammar to Vadalog rules; this is the
/// in-store evaluator used by pattern `@input` bindings and by tests as an
/// independent semantics check).
#[derive(Debug, Clone)]
pub enum PathPattern {
    /// A single edge traversal.
    Edge(EdgePattern),
    /// Concatenation `R₁ · R₂ · …` (empty sequence = ε).
    Seq(Vec<PathPattern>),
    /// Alternation `R₁ | R₂ | …` (empty alternation = ∅).
    Alt(Vec<PathPattern>),
    /// Kleene star `(R)*` — reflexive-transitive closure.
    Star(Box<PathPattern>),
}

impl PathPattern {
    /// A single labelled forward edge.
    pub fn edge(label: impl Into<String>) -> Self {
        PathPattern::Edge(EdgePattern::label(label))
    }

    /// Concatenation of `parts`.
    pub fn seq(parts: impl IntoIterator<Item = PathPattern>) -> Self {
        PathPattern::Seq(parts.into_iter().collect())
    }

    /// Alternation of `parts`.
    pub fn alt(parts: impl IntoIterator<Item = PathPattern>) -> Self {
        PathPattern::Alt(parts.into_iter().collect())
    }

    /// Kleene star over `self`.
    pub fn star(self) -> Self {
        PathPattern::Star(Box::new(self))
    }

    /// The inverse pattern `R⁻`, pushed down through the structure:
    /// `(R·S)⁻ = S⁻·R⁻`, `(R|S)⁻ = R⁻|S⁻`, `(R*)⁻ = (R⁻)*`, and an edge
    /// flips its traversal direction. `match_pairs(R⁻)` is exactly
    /// `match_pairs(R)` with every pair reversed (tested).
    pub fn inverse(self) -> Self {
        match self {
            PathPattern::Edge(e) => PathPattern::Edge(e.inverse()),
            PathPattern::Seq(parts) => {
                PathPattern::Seq(parts.into_iter().rev().map(PathPattern::inverse).collect())
            }
            PathPattern::Alt(parts) => {
                PathPattern::Alt(parts.into_iter().map(PathPattern::inverse).collect())
            }
            PathPattern::Star(inner) => PathPattern::Star(Box::new(inner.inverse())),
        }
    }
}

/// One result row of a triple scan: `(source, edge, target)` where `source`
/// matched the source pattern *after* direction resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripleMatch {
    /// The node bound to the pattern's source position.
    pub src: NodeId,
    /// The matched edge.
    pub edge: EdgeId,
    /// The node bound to the pattern's target position.
    pub dst: NodeId,
}

impl PropertyGraph {
    /// All nodes matching `pattern`, driven by the label index when present.
    pub fn match_nodes(&self, pattern: &NodePattern) -> Vec<NodeId> {
        let candidates: Vec<NodeId> = match &pattern.label {
            Some(l) => self.nodes_with_label(l),
            None => self.nodes().collect(),
        };
        candidates
            .into_iter()
            .filter(|&n| pattern.matches(self, n))
            .collect()
    }

    /// All `(src, edge, dst)` triples where `src` matches `src_pat`, `dst`
    /// matches `dst_pat` and the connecting edge matches `edge_pat` under its
    /// direction. With [`Direction::Both`] each undirected match is reported
    /// once per orientation that satisfies the patterns (semi-path
    /// semantics).
    pub fn match_triples(
        &self,
        src_pat: &NodePattern,
        edge_pat: &EdgePattern,
        dst_pat: &NodePattern,
    ) -> Vec<TripleMatch> {
        let mut out = Vec::new();
        // Drive by edge-label index when available: usually most selective.
        let edges: Vec<EdgeId> = match &edge_pat.label {
            Some(l) => self.edges_with_label(l),
            None => self.edges().collect(),
        };
        for e in edges {
            if !edge_pat.matches_edge(self, e) {
                continue;
            }
            let (f, t) = self.edge_endpoints(e);
            let forward = |out: &mut Vec<TripleMatch>| {
                if src_pat.matches(self, f) && dst_pat.matches(self, t) {
                    out.push(TripleMatch {
                        src: f,
                        edge: e,
                        dst: t,
                    });
                }
            };
            let backward = |out: &mut Vec<TripleMatch>| {
                if src_pat.matches(self, t) && dst_pat.matches(self, f) {
                    out.push(TripleMatch {
                        src: t,
                        edge: e,
                        dst: f,
                    });
                }
            };
            match edge_pat.direction {
                Direction::Outgoing => forward(&mut out),
                Direction::Incoming => backward(&mut out),
                Direction::Both => {
                    forward(&mut out);
                    backward(&mut out);
                }
            }
        }
        out
    }

    /// All `(src, dst)` node pairs connected by a path matching `pattern`,
    /// sorted and deduplicated. Evaluation is relation-algebraic: an edge
    /// pattern scans its triples, `Seq` composes relations, `Alt` unions
    /// them, and `Star` is the reflexive-transitive closure (reflexive over
    /// *all* nodes, matching the `x == y` base case MTV emits for `(R)*`).
    pub fn match_pairs(&self, pattern: &PathPattern) -> Vec<(NodeId, NodeId)> {
        let mut pairs: Vec<(NodeId, NodeId)> = self.eval_path(pattern).into_iter().collect();
        pairs.sort();
        pairs
    }

    fn eval_path(&self, pattern: &PathPattern) -> std::collections::BTreeSet<(NodeId, NodeId)> {
        use std::collections::BTreeSet;
        match pattern {
            PathPattern::Edge(e) => self
                .match_triples(&NodePattern::any(), e, &NodePattern::any())
                .into_iter()
                .map(|m| (m.src, m.dst))
                .collect(),
            PathPattern::Seq(parts) => {
                // ε: the identity relation over all nodes.
                let mut acc: BTreeSet<(NodeId, NodeId)> =
                    self.nodes().map(|n| (n, n)).collect();
                for p in parts {
                    let rel = self.eval_path(p);
                    acc = acc
                        .iter()
                        .flat_map(|&(a, b)| {
                            rel.iter()
                                .filter(move |&&(c, _)| c == b)
                                .map(move |&(_, d)| (a, d))
                        })
                        .collect();
                }
                acc
            }
            PathPattern::Alt(parts) => parts
                .iter()
                .flat_map(|p| self.eval_path(p))
                .collect(),
            PathPattern::Star(inner) => {
                let step = self.eval_path(inner);
                let mut acc: BTreeSet<(NodeId, NodeId)> =
                    self.nodes().map(|n| (n, n)).collect();
                loop {
                    let next: Vec<(NodeId, NodeId)> = acc
                        .iter()
                        .flat_map(|&(a, b)| {
                            step.iter()
                                .filter(move |&&(c, _)| c == b)
                                .map(move |&(_, d)| (a, d))
                        })
                        .filter(|p| !acc.contains(p))
                        .collect();
                    if next.is_empty() {
                        break acc;
                    }
                    acc.extend(next);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (PropertyGraph, NodeId, NodeId, NodeId) {
        let mut g = PropertyGraph::new();
        let p = g
            .add_node(
                ["Person", "PhysicalPerson"],
                vec![("name".to_string(), Value::str("Ada"))],
            )
            .unwrap();
        let b = g
            .add_node(["Business"], vec![("name".to_string(), Value::str("ACME"))])
            .unwrap();
        let c = g
            .add_node(["Business"], vec![("name".to_string(), Value::str("Globex"))])
            .unwrap();
        g.add_edge(
            p,
            b,
            "OWNS",
            vec![("percentage".to_string(), Value::Float(0.7))],
        )
        .unwrap();
        g.add_edge(
            b,
            c,
            "OWNS",
            vec![("percentage".to_string(), Value::Float(0.4))],
        )
        .unwrap();
        g.add_edge(p, c, "HAS_ROLE", vec![]).unwrap();
        (g, p, b, c)
    }

    #[test]
    fn node_pattern_by_label_and_prop() {
        let (g, p, ..) = sample();
        let hits = g.match_nodes(&NodePattern::label("PhysicalPerson"));
        assert_eq!(hits, vec![p]);
        let hits = g.match_nodes(
            &NodePattern::label("Business").with_prop("name", Value::str("ACME")),
        );
        assert_eq!(hits.len(), 1);
        let none = g.match_nodes(
            &NodePattern::label("Business").with_prop("name", Value::str("NONE")),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn any_pattern_matches_everything() {
        let (g, ..) = sample();
        assert_eq!(g.match_nodes(&NodePattern::any()).len(), 3);
    }

    #[test]
    fn triple_match_outgoing() {
        let (g, p, b, _) = sample();
        let ms = g.match_triples(
            &NodePattern::label("Person"),
            &EdgePattern::label("OWNS"),
            &NodePattern::label("Business"),
        );
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].src, p);
        assert_eq!(ms[0].dst, b);
    }

    #[test]
    fn triple_match_inverse_swaps_roles() {
        let (g, p, b, _) = sample();
        let ms = g.match_triples(
            &NodePattern::label("Business"),
            &EdgePattern::label("OWNS").inverse(),
            &NodePattern::label("Person"),
        );
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].src, b);
        assert_eq!(ms[0].dst, p);
    }

    #[test]
    fn triple_match_edge_prop_filter() {
        let (g, ..) = sample();
        let ms = g.match_triples(
            &NodePattern::any(),
            &EdgePattern::label("OWNS").with_prop("percentage", Value::Float(0.4)),
            &NodePattern::any(),
        );
        assert_eq!(ms.len(), 1);
    }

    /// Reverse every pair of a relation.
    fn reversed(mut pairs: Vec<(NodeId, NodeId)>) -> Vec<(NodeId, NodeId)> {
        for p in &mut pairs {
            *p = (p.1, p.0);
        }
        pairs.sort();
        pairs
    }

    #[test]
    fn star_closes_ownership_chains() {
        // p -OWNS-> b -OWNS-> c: (OWNS)* is reflexive plus the three
        // forward reachability pairs.
        let (g, p, b, c) = sample();
        let pairs = g.match_pairs(&PathPattern::edge("OWNS").star());
        for n in [p, b, c] {
            assert!(pairs.contains(&(n, n)), "missing reflexive pair");
        }
        assert!(pairs.contains(&(p, b)));
        assert!(pairs.contains(&(b, c)));
        assert!(pairs.contains(&(p, c)), "missing 2-hop closure");
        assert!(!pairs.contains(&(c, p)));
    }

    #[test]
    fn inverse_commutes_with_star() {
        // ((OWNS)⁻)* must equal ((OWNS)*)⁻ — i.e. the forward closure with
        // every pair flipped. This is the inverse-under-Kleene-star law the
        // MTV translation relies on.
        let (g, ..) = sample();
        let fwd_star = g.match_pairs(&PathPattern::edge("OWNS").star());
        let inv_star = g.match_pairs(&PathPattern::edge("OWNS").inverse().star());
        let star_inv = g.match_pairs(&PathPattern::edge("OWNS").star().inverse());
        assert_eq!(inv_star, star_inv);
        assert_eq!(inv_star, reversed(fwd_star));
    }

    #[test]
    fn alternation_of_inverses_is_inverse_of_alternation() {
        // (OWNS⁻ | HAS_ROLE⁻) = (OWNS | HAS_ROLE)⁻: both must equal the
        // union of the reversed base relations.
        let (g, ..) = sample();
        let fwd = g.match_pairs(&PathPattern::alt([
            PathPattern::edge("OWNS"),
            PathPattern::edge("HAS_ROLE"),
        ]));
        let alt_of_inv = g.match_pairs(&PathPattern::alt([
            PathPattern::edge("OWNS").inverse(),
            PathPattern::edge("HAS_ROLE").inverse(),
        ]));
        let inv_of_alt = g.match_pairs(
            &PathPattern::alt([PathPattern::edge("OWNS"), PathPattern::edge("HAS_ROLE")])
                .inverse(),
        );
        assert_eq!(alt_of_inv, inv_of_alt);
        assert_eq!(alt_of_inv, reversed(fwd));
        assert_eq!(alt_of_inv.len(), 3);
    }

    #[test]
    fn star_over_alternation_reaches_both_directions() {
        // (OWNS | OWNS⁻)* connects every node of the ownership chain to
        // every other, in both directions.
        let (g, p, b, c) = sample();
        let pairs = g.match_pairs(
            &PathPattern::alt([
                PathPattern::edge("OWNS"),
                PathPattern::edge("OWNS").inverse(),
            ])
            .star(),
        );
        for x in [p, b, c] {
            for y in [p, b, c] {
                assert!(pairs.contains(&(x, y)), "missing ({x:?}, {y:?})");
            }
        }
    }

    #[test]
    fn seq_composes_and_inverse_reverses_seq() {
        // OWNS · OWNS is exactly the 2-hop pair; its inverse walks the
        // chain backwards (inverse reverses the concatenation order).
        let (g, p, _, c) = sample();
        let two_hop = PathPattern::seq([PathPattern::edge("OWNS"), PathPattern::edge("OWNS")]);
        assert_eq!(g.match_pairs(&two_hop), vec![(p, c)]);
        assert_eq!(g.match_pairs(&two_hop.clone().inverse()), vec![(c, p)]);
        // ε (the empty sequence) is the identity relation.
        let eps = g.match_pairs(&PathPattern::seq([]));
        assert_eq!(eps.len(), 3);
        assert!(eps.iter().all(|&(a, b)| a == b));
    }

    #[test]
    fn triple_match_both_directions_reports_each_orientation() {
        let (g, _, b, c) = sample();
        let ms = g.match_triples(
            &NodePattern::label("Business"),
            &EdgePattern {
                label: Some("OWNS".into()),
                props: vec![],
                direction: Direction::Both,
            },
            &NodePattern::label("Business"),
        );
        // b -OWNS-> c matches as (b,c) forward and (c,b) backward.
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().any(|m| m.src == b && m.dst == c));
        assert!(ms.iter().any(|m| m.src == c && m.dst == b));
    }
}
