//! Aggregate topology statistics — the Section 2.1 "table".
//!
//! The paper characterizes the Central Bank of Italy shareholding graph with
//! the measures collected in [`GraphStats`]. The `paper-harness e1` binary
//! prints this structure side by side with the paper's reported values.

use crate::algo::{
    average_clustering_coefficient, power_law_alpha, strongly_connected_components,
    weakly_connected_components, EdgeFilter,
};
use crate::graph::PropertyGraph;

/// The topology statistics reported in Section 2.1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of (live) nodes.
    pub nodes: usize,
    /// Number of (live) edges matching the filter.
    pub edges: usize,
    /// Number of strongly connected components.
    pub scc_count: usize,
    /// Size of the largest SCC.
    pub largest_scc: usize,
    /// Number of weakly connected components.
    pub wcc_count: usize,
    /// Size of the largest WCC.
    pub largest_wcc: usize,
    /// Average in-degree (== average out-degree in a directed graph; the
    /// paper reports them over different node subsets, we report edges/nodes
    /// for "avg out" and in-degree over nodes with ≥1 in-edge for "avg in",
    /// matching the asymmetry of the paper's ≈3.12 vs ≈1.78 figures).
    pub avg_in_degree: f64,
    /// Average out-degree over nodes with at least one outgoing edge.
    pub avg_out_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Average local clustering coefficient.
    pub clustering_coefficient: f64,
    /// MLE power-law exponent of the total-degree distribution (if defined).
    pub power_law_alpha: Option<f64>,
}

impl GraphStats {
    /// Compute every statistic over the sub-graph selected by `filter`.
    pub fn compute(g: &PropertyGraph, filter: &EdgeFilter) -> GraphStats {
        let sccs = strongly_connected_components(g, filter);
        let wccs = weakly_connected_components(g, filter);

        let mut edges = 0usize;
        let mut in_deg: Vec<usize> = Vec::new();
        let mut out_deg: Vec<usize> = Vec::new();
        let mut total_deg: Vec<usize> = Vec::new();
        for n in g.nodes() {
            let (mut o, mut i) = (0usize, 0usize);
            for e in g.incident_edges(n, crate::graph::Direction::Outgoing) {
                if filter.label.as_ref().is_none_or(|l| g.edge_label(e) == *l) {
                    o += 1;
                }
            }
            for e in g.incident_edges(n, crate::graph::Direction::Incoming) {
                if filter.label.as_ref().is_none_or(|l| g.edge_label(e) == *l) {
                    i += 1;
                }
            }
            edges += o;
            in_deg.push(i);
            out_deg.push(o);
            total_deg.push(i + o);
        }

        let avg_over_positive = |d: &[usize]| {
            let (sum, n) = d
                .iter()
                .filter(|&&k| k > 0)
                .fold((0usize, 0usize), |(s, c), &k| (s + k, c + 1));
            if n == 0 {
                0.0
            } else {
                sum as f64 / n as f64
            }
        };

        GraphStats {
            nodes: g.node_count(),
            edges,
            scc_count: sccs.len(),
            largest_scc: sccs.iter().map(|c| c.len()).max().unwrap_or(0),
            wcc_count: wccs.len(),
            largest_wcc: wccs.iter().map(|c| c.len()).max().unwrap_or(0),
            avg_in_degree: avg_over_positive(&in_deg),
            avg_out_degree: avg_over_positive(&out_deg),
            max_in_degree: in_deg.iter().copied().max().unwrap_or(0),
            max_out_degree: out_deg.iter().copied().max().unwrap_or(0),
            clustering_coefficient: average_clustering_coefficient(g, filter),
            power_law_alpha: power_law_alpha(&total_deg, 2),
        }
    }
}

/// In-degree histogram of the filtered sub-graph: `(degree, node count)`
/// pairs sorted by degree — the data behind the paper's *"degree
/// distribution follows a power-law"* claim. Plot log(count) vs log(degree)
/// to see the straight line.
pub fn in_degree_histogram(
    g: &PropertyGraph,
    filter: &crate::algo::EdgeFilter,
) -> Vec<(usize, usize)> {
    use kgm_common::FxHashMap;
    let mut hist: FxHashMap<usize, usize> = FxHashMap::default();
    for n in g.nodes() {
        let k = g
            .incident_edges(n, crate::graph::Direction::Incoming)
            .into_iter()
            .filter(|&e| filter.label.as_ref().is_none_or(|l| g.edge_label(e) == *l))
            .count();
        *hist.entry(k).or_insert(0) += 1;
    }
    let mut out: Vec<(usize, usize)> = hist.into_iter().collect();
    out.sort_unstable();
    out
}

/// Render the histogram as a log-log table with an ASCII bar per row
/// (skipping degree 0, which has no log).
pub fn degree_distribution_table(hist: &[(usize, usize)]) -> String {
    let mut out = String::new();
    out.push_str("degree    count   log10(k)  log10(n)  
");
    for &(k, n) in hist {
        if k == 0 {
            continue;
        }
        let bar = "#".repeat(((n as f64).log10().max(0.0) * 8.0) as usize + 1);
        out.push_str(&format!(
            "{k:>6} {n:>8} {:>9.2} {:>9.2}  {bar}
",
            (k as f64).log10(),
            (n as f64).log10()
        ));
    }
    out
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "nodes                 {:>12}", self.nodes)?;
        writeln!(f, "edges                 {:>12}", self.edges)?;
        writeln!(f, "SCCs                  {:>12}", self.scc_count)?;
        writeln!(f, "largest SCC           {:>12}", self.largest_scc)?;
        writeln!(f, "WCCs                  {:>12}", self.wcc_count)?;
        writeln!(f, "largest WCC           {:>12}", self.largest_wcc)?;
        writeln!(f, "avg in-degree         {:>12.2}", self.avg_in_degree)?;
        writeln!(f, "avg out-degree        {:>12.2}", self.avg_out_degree)?;
        writeln!(f, "max in-degree         {:>12}", self.max_in_degree)?;
        writeln!(f, "max out-degree        {:>12}", self.max_out_degree)?;
        writeln!(
            f,
            "clustering coeff.     {:>12.4}",
            self.clustering_coefficient
        )?;
        match self.power_law_alpha {
            Some(a) => writeln!(f, "power-law α (MLE)     {a:>12.2}"),
            None => writeln!(f, "power-law α (MLE)              n/a"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_a_small_dag() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["N"], vec![]).unwrap();
        let b = g.add_node(["N"], vec![]).unwrap();
        let c = g.add_node(["N"], vec![]).unwrap();
        g.add_edge(a, b, "OWNS", vec![]).unwrap();
        g.add_edge(a, c, "OWNS", vec![]).unwrap();
        g.add_edge(b, c, "OWNS", vec![]).unwrap();
        let s = GraphStats::compute(&g, &EdgeFilter::all());
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.scc_count, 3);
        assert_eq!(s.largest_scc, 1);
        assert_eq!(s.wcc_count, 1);
        assert_eq!(s.largest_wcc, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        // a has out 2, b has out 1 → avg over positive = 1.5
        assert!((s.avg_out_degree - 1.5).abs() < 1e-12);
        // b has in 1, c has in 2 → 1.5
        assert!((s.avg_in_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn filter_restricts_edge_counts() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["N"], vec![]).unwrap();
        let b = g.add_node(["N"], vec![]).unwrap();
        g.add_edge(a, b, "OWNS", vec![]).unwrap();
        g.add_edge(a, b, "HAS_ROLE", vec![]).unwrap();
        let all = GraphStats::compute(&g, &EdgeFilter::all());
        let owns = GraphStats::compute(&g, &EdgeFilter::label("OWNS"));
        assert_eq!(all.edges, 2);
        assert_eq!(owns.edges, 1);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = PropertyGraph::new();
        let s = GraphStats::compute(&g, &EdgeFilter::all());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.avg_in_degree, 0.0);
        assert!(s.power_law_alpha.is_none());
    }

    #[test]
    fn in_degree_histogram_counts_correctly() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["N"], vec![]).unwrap();
        let b = g.add_node(["N"], vec![]).unwrap();
        let c = g.add_node(["N"], vec![]).unwrap();
        g.add_edge(a, c, "E", vec![]).unwrap();
        g.add_edge(b, c, "E", vec![]).unwrap();
        let hist = in_degree_histogram(&g, &EdgeFilter::all());
        // a, b have in-degree 0; c has in-degree 2.
        assert_eq!(hist, vec![(0, 2), (2, 1)]);
        let table = degree_distribution_table(&hist);
        assert!(table.contains("log10"));
        assert!(!table.contains("
     0"), "degree 0 skipped");
    }

    #[test]
    fn display_is_complete() {
        let g = PropertyGraph::new();
        let s = GraphStats::compute(&g, &EdgeFilter::all());
        let text = s.to_string();
        for key in ["nodes", "SCCs", "WCCs", "clustering", "power-law"] {
            assert!(text.contains(key), "missing {key} in\n{text}");
        }
    }
}
