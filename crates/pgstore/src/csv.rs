//! CSV serialization of property graphs.
//!
//! Section 2.2 lists *"non-graph-like models that are frequently used to
//! serialize graphs, such as the relational data model, plain CSV files"*
//! among the KG models the super-model subsumes. This module provides the
//! CSV serialization: a long-format pair of documents (one for nodes, one
//! for edges) with full round-tripping of labels, properties and topology.
//!
//! Format (RFC-4180-style quoting):
//!
//! ```text
//! nodes:  oid,labels,key,type,value
//! edges:  oid,label,from,to,key,type,value
//! ```
//!
//! One row per property; elements without properties produce a single row
//! with empty `key`/`type`/`value`.

#![allow(clippy::type_complexity)] // long accumulator tuples are local plumbing

use crate::graph::{NodeId, PropertyGraph};
use kgm_common::{FxHashMap, KgmError, Oid, Result, Value, ValueType};

fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Per-field parser state for [`parse_document`].
enum FieldState {
    /// Nothing consumed yet — a `"` here opens a quoted field.
    Start,
    /// Inside an unquoted field — a bare `"` here is malformed (RFC 4180).
    Unquoted,
    /// Inside a quoted field — commas and newlines are literal.
    Quoted,
    /// A closing `"` was just consumed — only a delimiter may follow.
    QuoteEnd,
}

/// Split a CSV document into records per RFC 4180: quoted fields may contain
/// commas, escaped quotes (`""`) and newlines; blank lines between records
/// are skipped. Rejects a bare `"` inside an unquoted field (`a"b`) and any
/// character other than a delimiter after a closing quote (`"a"b`) — both
/// used to corrupt the row silently by flipping the quote state mid-field.
fn parse_document(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut state = FieldState::Start;
    let mut chars = text.chars().peekable();
    let bad = |what: String, field: &str| {
        KgmError::parse("CSV", format!("{what} (near `{field}`)"))
    };
    while let Some(c) = chars.next() {
        // Normalize CRLF to a record terminator outside quotes.
        let c = if c == '\r'
            && chars.peek() == Some(&'\n')
            && !matches!(state, FieldState::Quoted)
        {
            chars.next();
            '\n'
        } else {
            c
        };
        match state {
            FieldState::Start => match c {
                '"' => state = FieldState::Quoted,
                ',' => fields.push(std::mem::take(&mut field)),
                '\n' => {
                    if !fields.is_empty() || !field.is_empty() {
                        fields.push(std::mem::take(&mut field));
                        records.push(std::mem::take(&mut fields));
                    }
                    // A lone newline is a blank line: skip it.
                }
                _ => {
                    field.push(c);
                    state = FieldState::Unquoted;
                }
            },
            FieldState::Unquoted => match c {
                '"' => {
                    return Err(bad(
                        "bare `\"` inside an unquoted field".to_string(),
                        &field,
                    ))
                }
                ',' => {
                    fields.push(std::mem::take(&mut field));
                    state = FieldState::Start;
                }
                '\n' => {
                    fields.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut fields));
                    state = FieldState::Start;
                }
                _ => field.push(c),
            },
            FieldState::Quoted => {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        state = FieldState::QuoteEnd;
                    }
                } else {
                    field.push(c);
                }
            }
            FieldState::QuoteEnd => match c {
                ',' => {
                    fields.push(std::mem::take(&mut field));
                    state = FieldState::Start;
                }
                '\n' => {
                    fields.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut fields));
                    state = FieldState::Start;
                }
                other => {
                    return Err(bad(
                        format!("`{other}` after a closing quote"),
                        &field,
                    ))
                }
            },
        }
    }
    match state {
        FieldState::Quoted => {
            return Err(bad("unterminated quote".to_string(), &field));
        }
        FieldState::Unquoted | FieldState::QuoteEnd => {
            fields.push(field);
            records.push(fields);
        }
        FieldState::Start => {
            if !fields.is_empty() || !field.is_empty() {
                fields.push(field);
                records.push(fields);
            }
        }
    }
    Ok(records)
}

/// Parse one record (kept for targeted tests; quoted fields may still embed
/// newlines, but the text must form a single record).
#[cfg(test)]
fn split_line(line: &str) -> Result<Vec<String>> {
    let mut records = parse_document(line)?;
    match records.len() {
        0 => Ok(vec![String::new()]),
        1 => Ok(records.pop().expect("one record")),
        n => Err(KgmError::parse(
            "CSV",
            format!("expected one record, found {n}: {line}"),
        )),
    }
}

fn value_to_fields(v: &Value) -> (String, String) {
    let ty = v.value_type().to_string();
    let s = match v {
        Value::Str(s) => s.to_string(),
        Value::Oid(o) => o.raw().to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Date(d) => d.to_string(),
    };
    (ty, s)
}

fn value_from_fields(ty: &str, s: &str) -> Result<Value> {
    let vt = ValueType::parse(ty)
        .ok_or_else(|| KgmError::parse("CSV", format!("unknown type `{ty}`")))?;
    let bad = || KgmError::parse("CSV", format!("bad {ty} literal `{s}`"));
    Ok(match vt {
        ValueType::Bool => Value::Bool(s.parse().map_err(|_| bad())?),
        ValueType::Int => Value::Int(s.parse().map_err(|_| bad())?),
        ValueType::Float => Value::Float(s.parse().map_err(|_| bad())?),
        ValueType::Str => Value::str(s),
        ValueType::Date => Value::Date(s.parse().map_err(|_| bad())?),
        ValueType::Oid => Value::Oid(Oid::from_raw(s.parse().map_err(|_| bad())?)),
    })
}

/// Serialize a graph to `(nodes_csv, edges_csv)`.
pub fn export(g: &PropertyGraph) -> (String, String) {
    let mut nodes = String::from("oid,labels,key,type,value\n");
    for n in g.nodes() {
        let oid = g.node_oid(n).raw().to_string();
        let labels = g.node_labels(n).join(";");
        let props = g.node_props(n);
        if props.is_empty() {
            nodes.push_str(&format!("{},{},,,\n", quote(&oid), quote(&labels)));
        } else {
            for (k, v) in props {
                let (ty, val) = value_to_fields(&v);
                nodes.push_str(&format!(
                    "{},{},{},{},{}\n",
                    quote(&oid),
                    quote(&labels),
                    quote(&k),
                    ty,
                    quote(&val)
                ));
            }
        }
    }
    let mut edges = String::from("oid,label,from,to,key,type,value\n");
    for e in g.edges() {
        let oid = g.edge_oid(e).raw().to_string();
        let label = g.edge_label(e);
        let (f, t) = g.edge_endpoints(e);
        let from = g.node_oid(f).raw().to_string();
        let to = g.node_oid(t).raw().to_string();
        let props = g.edge_props(e);
        if props.is_empty() {
            edges.push_str(&format!(
                "{},{},{},{},,,\n",
                quote(&oid),
                quote(&label),
                from,
                to
            ));
        } else {
            for (k, v) in props {
                let (ty, val) = value_to_fields(&v);
                edges.push_str(&format!(
                    "{},{},{},{},{},{},{}\n",
                    quote(&oid),
                    quote(&label),
                    from,
                    to,
                    quote(&k),
                    ty,
                    quote(&val)
                ));
            }
        }
    }
    (nodes, edges)
}

/// Deserialize a graph from the two CSV documents produced by [`export`].
///
/// OIDs are re-minted by the target graph; topology, labels and properties
/// are preserved.
pub fn import(nodes_csv: &str, edges_csv: &str) -> Result<PropertyGraph> {
    if let Some(msg) = kgm_runtime::fault::trip("csv.import") {
        return Err(KgmError::Internal(msg));
    }
    let mut g = PropertyGraph::new();
    let mut by_old_oid: FxHashMap<u64, NodeId> = FxHashMap::default();
    // Accumulate node rows: oid → (labels, props)
    let mut node_rows: Vec<(u64, Vec<String>, Vec<(String, Value)>)> = Vec::new();
    let mut node_index: FxHashMap<u64, usize> = FxHashMap::default();
    for (i, f) in parse_document(nodes_csv)?.into_iter().enumerate() {
        if i == 0 {
            continue; // header
        }
        if f.len() != 5 {
            return Err(KgmError::parse(
                "CSV",
                format!("node row must have 5 fields: {f:?}"),
            ));
        }
        let oid: u64 = f[0]
            .parse()
            .map_err(|_| KgmError::parse("CSV", format!("bad oid `{}`", f[0])))?;
        let labels: Vec<String> = if f[1].is_empty() {
            Vec::new()
        } else {
            f[1].split(';').map(str::to_string).collect()
        };
        let slot = *node_index.entry(oid).or_insert_with(|| {
            node_rows.push((oid, labels.clone(), Vec::new()));
            node_rows.len() - 1
        });
        if !f[2].is_empty() {
            let v = value_from_fields(&f[3], &f[4])?;
            node_rows[slot].2.push((f[2].clone(), v));
        }
    }
    for (oid, labels, props) in node_rows {
        let id = g.add_node(labels, props)?;
        by_old_oid.insert(oid, id);
    }

    let mut edge_rows: Vec<(u64, String, u64, u64, Vec<(String, Value)>)> = Vec::new();
    let mut edge_index: FxHashMap<u64, usize> = FxHashMap::default();
    for (i, f) in parse_document(edges_csv)?.into_iter().enumerate() {
        if i == 0 {
            continue; // header
        }
        if f.len() != 7 {
            return Err(KgmError::parse(
                "CSV",
                format!("edge row must have 7 fields: {f:?}"),
            ));
        }
        let parse_u64 = |s: &str| {
            s.parse::<u64>()
                .map_err(|_| KgmError::parse("CSV", format!("bad oid `{s}`")))
        };
        let oid = parse_u64(&f[0])?;
        let slot = *edge_index.entry(oid).or_insert_with(|| {
            edge_rows.push((oid, f[1].clone(), 0, 0, Vec::new()));
            edge_rows.len() - 1
        });
        edge_rows[slot].2 = parse_u64(&f[2])?;
        edge_rows[slot].3 = parse_u64(&f[3])?;
        if !f[4].is_empty() {
            let v = value_from_fields(&f[5], &f[6])?;
            edge_rows[slot].4.push((f[4].clone(), v));
        }
    }
    for (_, label, from, to, props) in edge_rows {
        let f = *by_old_oid
            .get(&from)
            .ok_or_else(|| KgmError::NotFound(format!("edge endpoint oid {from}")))?;
        let t = *by_old_oid
            .get(&to)
            .ok_or_else(|| KgmError::NotFound(format!("edge endpoint oid {to}")))?;
        g.add_edge(f, t, &label, props)?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g
            .add_node(
                ["Person", "PhysicalPerson"],
                vec![
                    ("name".to_string(), Value::str("Rossi, \"Mario\"")),
                    ("age".to_string(), Value::Int(44)),
                ],
            )
            .unwrap();
        let b = g
            .add_node(["Business"], vec![("capital".to_string(), Value::Float(0.5))])
            .unwrap();
        let c = g.add_node(["Place"], vec![]).unwrap();
        g.add_edge(
            a,
            b,
            "OWNS",
            vec![("percentage".to_string(), Value::Float(0.33))],
        )
        .unwrap();
        g.add_edge(a, c, "RESIDES", vec![]).unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = sample();
        let (n, e) = export(&g);
        let g2 = import(&n, &e).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        // Node with tricky quoted name survived.
        let hits = g2.match_nodes(
            &crate::pattern::NodePattern::label("Person")
                .with_prop("name", Value::str("Rossi, \"Mario\"")),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(g2.node_prop(hits[0], "age"), Some(&Value::Int(44)));
        // Edge with property survived.
        let owns = g2.edges_with_label("OWNS");
        assert_eq!(owns.len(), 1);
        assert_eq!(
            g2.edge_prop(owns[0], "percentage"),
            Some(&Value::Float(0.33))
        );
    }

    #[test]
    fn quoting_round_trips() {
        for s in [
            "plain",
            "with,comma",
            "with\"quote",
            "with\nnewline",
            "\"leading",
            "trailing\"",
            ",\"\n,mixed,\"\"\n",
            "crlf\r\nline",
        ] {
            let q = quote(s);
            let parsed = split_line(&format!("{q},x")).unwrap();
            assert_eq!(parsed[0], s, "through {q:?}");
            assert_eq!(parsed[1], "x");
        }
    }

    #[test]
    fn bare_quote_in_unquoted_field_is_rejected() {
        // `a"b,c` used to flip the quote state mid-field and swallow the
        // comma, silently merging two fields into `ab,c`.
        let err = split_line("a\"b,c").unwrap_err();
        assert!(err.to_string().contains("bare"), "{err}");
        // Junk after a closing quote is equally malformed (RFC 4180).
        assert!(split_line("\"a\"b,c").is_err());
        // …and both surface through a full document import.
        let nodes = "oid,labels,key,type,value\n1,P\"X,,,\n";
        assert!(import(nodes, "oid,label,from,to,key,type,value\n").is_err());
    }

    #[test]
    fn quoted_newlines_round_trip_through_the_graph() {
        let mut g = PropertyGraph::new();
        g.add_node(
            ["Note"],
            vec![(
                "text".to_string(),
                Value::str("line one\nline two, with comma and \"quotes\""),
            )],
        )
        .unwrap();
        let (n, e) = export(&g);
        let g2 = import(&n, &e).unwrap();
        assert_eq!(g2.node_count(), 1);
        let hits = g2.match_nodes(&crate::pattern::NodePattern::label("Note"));
        assert_eq!(
            g2.node_prop(hits[0], "text"),
            Some(&Value::str("line one\nline two, with comma and \"quotes\""))
        );
    }

    #[test]
    fn blank_lines_and_crlf_are_tolerated() {
        let nodes = "oid,labels,key,type,value\r\n\r\n1,P,,,\r\n\n2,Q,,,\n";
        let g = import(nodes, "oid,label,from,to,key,type,value\n").unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn malformed_rows_are_rejected() {
        assert!(import("oid,labels,key,type,value\n1,2\n", "oid,label,from,to,key,type,value\n").is_err());
        assert!(import(
            "oid,labels,key,type,value\n",
            "oid,label,from,to,key,type,value\nnope,R,1,2,,,\n"
        )
        .is_err());
    }

    #[test]
    fn dangling_edge_endpoint_is_rejected() {
        let edges = "oid,label,from,to,key,type,value\n9,R,1,2,,,\n";
        assert!(import("oid,labels,key,type,value\n", edges).is_err());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = PropertyGraph::new();
        let (n, e) = export(&g);
        let g2 = import(&n, &e).unwrap();
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(split_line("\"abc").is_err());
    }
}
