//! Graph algorithms backing the Section 2.1 topology statistics.
//!
//! The paper characterizes the Bank of Italy shareholding graph by its
//! strongly/weakly connected components, degree statistics and clustering
//! coefficient. These algorithms compute the same measures on any
//! [`PropertyGraph`] (optionally restricted to one edge label, since the
//! paper's numbers are for the plain shareholding sub-graph).

use crate::graph::{Direction, NodeId, PropertyGraph};
use kgm_common::{FxHashMap, FxHashSet};

/// A restriction of a graph to the edges carrying one label (or all).
#[derive(Debug, Clone, Default)]
pub struct EdgeFilter {
    /// Only traverse edges with this label; `None` means all edges.
    pub label: Option<String>,
}

impl EdgeFilter {
    /// Traverse every edge.
    pub fn all() -> Self {
        EdgeFilter::default()
    }

    /// Traverse only edges labelled `label`.
    pub fn label(label: impl Into<String>) -> Self {
        EdgeFilter {
            label: Some(label.into()),
        }
    }

    fn out_neighbors(&self, g: &PropertyGraph, n: NodeId) -> Vec<NodeId> {
        g.incident_edges(n, Direction::Outgoing)
            .into_iter()
            .filter(|&e| match &self.label {
                Some(l) => g.edge_label(e) == *l,
                None => true,
            })
            .map(|e| g.edge_endpoints(e).1)
            .collect()
    }

    fn und_neighbors(&self, g: &PropertyGraph, n: NodeId) -> Vec<NodeId> {
        g.incident_edges(n, Direction::Both)
            .into_iter()
            .filter(|&e| match &self.label {
                Some(l) => g.edge_label(e) == *l,
                None => true,
            })
            .map(|e| {
                let (f, t) = g.edge_endpoints(e);
                if f == n {
                    t
                } else {
                    f
                }
            })
            .collect()
    }
}

/// Strongly connected components via an iterative Tarjan algorithm.
///
/// Returns one `Vec<NodeId>` per component; components appear in reverse
/// topological order of the condensation (Tarjan's natural output order).
pub fn strongly_connected_components(g: &PropertyGraph, filter: &EdgeFilter) -> Vec<Vec<NodeId>> {
    #[derive(Clone, Copy)]
    struct Frame {
        node: NodeId,
        next_child: usize,
    }

    let mut index: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut lowlink: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut on_stack: FxHashSet<NodeId> = FxHashSet::default();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut counter: u32 = 0;
    let mut adj_cache: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();

    for root in g.nodes() {
        if index.contains_key(&root) {
            continue;
        }
        let mut call_stack = vec![Frame {
            node: root,
            next_child: 0,
        }];
        index.insert(root, counter);
        lowlink.insert(root, counter);
        counter += 1;
        stack.push(root);
        on_stack.insert(root);

        while let Some(frame) = call_stack.last_mut() {
            let v = frame.node;
            let children = adj_cache
                .entry(v)
                .or_insert_with(|| filter.out_neighbors(g, v));
            if frame.next_child < children.len() {
                let w = children[frame.next_child];
                frame.next_child += 1;
                if let Some(&wi) = index.get(&w) {
                    if on_stack.contains(&w) {
                        let low = lowlink[&v].min(wi);
                        lowlink.insert(v, low);
                    }
                } else {
                    index.insert(w, counter);
                    lowlink.insert(w, counter);
                    counter += 1;
                    stack.push(w);
                    on_stack.insert(w);
                    call_stack.push(Frame {
                        node: w,
                        next_child: 0,
                    });
                }
            } else {
                // Post-order: pop and propagate lowlink to parent.
                let finished = call_stack.pop().expect("frame exists");
                let v = finished.node;
                if let Some(parent) = call_stack.last() {
                    let low = lowlink[&parent.node].min(lowlink[&v]);
                    lowlink.insert(parent.node, low);
                }
                if lowlink[&v] == index[&v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack underflow");
                        on_stack.remove(&w);
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// Weakly connected components via union-find with path halving and union by
/// size.
pub fn weakly_connected_components(g: &PropertyGraph, filter: &EdgeFilter) -> Vec<Vec<NodeId>> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let mut slot: FxHashMap<NodeId, usize> = FxHashMap::default();
    for (i, &n) in nodes.iter().enumerate() {
        slot.insert(n, i);
    }
    let mut parent: Vec<usize> = (0..nodes.len()).collect();
    let mut size: Vec<usize> = vec![1; nodes.len()];

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }

    for e in g.edges() {
        if let Some(l) = &filter.label {
            if g.edge_label(e) != *l {
                continue;
            }
        }
        let (f, t) = g.edge_endpoints(e);
        let (mut a, mut b) = (find(&mut parent, slot[&f]), find(&mut parent, slot[&t]));
        if a != b {
            if size[a] < size[b] {
                std::mem::swap(&mut a, &mut b);
            }
            parent[b] = a;
            size[a] += size[b];
        }
    }

    let mut comps: FxHashMap<usize, Vec<NodeId>> = FxHashMap::default();
    for (i, &n) in nodes.iter().enumerate() {
        comps.entry(find(&mut parent, i)).or_default().push(n);
    }
    comps.into_values().collect()
}

/// Average local clustering coefficient of the undirected simple projection.
///
/// `C_i = 2·T_i / (k_i·(k_i−1))` where `T_i` counts links among the distinct
/// neighbours of `i`; nodes of degree < 2 contribute 0, and the average runs
/// over all nodes (the convention under which the paper reports ≈ 0.0086).
pub fn average_clustering_coefficient(g: &PropertyGraph, filter: &EdgeFilter) -> f64 {
    let mut neigh: FxHashMap<NodeId, FxHashSet<NodeId>> = FxHashMap::default();
    for n in g.nodes() {
        let set: FxHashSet<NodeId> = filter
            .und_neighbors(g, n)
            .into_iter()
            .filter(|&m| m != n) // ignore self loops
            .collect();
        neigh.insert(n, set);
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (n, ns) in &neigh {
        count += 1;
        let k = ns.len();
        if k < 2 {
            continue;
        }
        let mut links = 0usize;
        let members: Vec<NodeId> = ns.iter().copied().collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if neigh[&members[i]].contains(&members[j]) {
                    links += 1;
                }
            }
        }
        let _ = n;
        total += (2.0 * links as f64) / (k as f64 * (k as f64 - 1.0));
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Maximum-likelihood estimate of a discrete power-law exponent
/// `α ≈ 1 + n / Σ ln(k_i / (k_min − ½))` over the degrees ≥ `k_min`.
///
/// Used to verify the scale-free claim of Section 2.1 on generated graphs.
pub fn power_law_alpha(degrees: &[usize], k_min: usize) -> Option<f64> {
    let k_min = k_min.max(1);
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&k| k >= k_min)
        .map(|&k| k as f64)
        .collect();
    if tail.len() < 2 {
        return None;
    }
    let denom: f64 = tail
        .iter()
        .map(|&k| (k / (k_min as f64 - 0.5)).ln())
        .sum();
    if denom <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgm_common::Value;

    fn line(n: usize) -> (PropertyGraph, Vec<NodeId>) {
        let mut g = PropertyGraph::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                g.add_node(["N"], vec![("i".to_string(), Value::Int(i as i64))])
                    .unwrap()
            })
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], "E", vec![]).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn scc_of_a_line_is_singletons() {
        let (g, ids) = line(5);
        let sccs = strongly_connected_components(&g, &EdgeFilter::all());
        assert_eq!(sccs.len(), ids.len());
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scc_detects_cycles() {
        let (mut g, ids) = line(5);
        // Close a cycle over the first three nodes.
        g.add_edge(ids[2], ids[0], "E", vec![]).unwrap();
        let sccs = strongly_connected_components(&g, &EdgeFilter::all());
        assert_eq!(sccs.len(), 3); // {0,1,2}, {3}, {4}
        let largest = sccs.iter().map(|c| c.len()).max().unwrap();
        assert_eq!(largest, 3);
    }

    #[test]
    fn scc_respects_edge_filter() {
        let (mut g, ids) = line(3);
        g.add_edge(ids[2], ids[0], "OTHER", vec![]).unwrap();
        let all = strongly_connected_components(&g, &EdgeFilter::all());
        assert_eq!(all.len(), 1);
        let only_e = strongly_connected_components(&g, &EdgeFilter::label("E"));
        assert_eq!(only_e.len(), 3);
    }

    #[test]
    fn wcc_merges_across_direction() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["N"], vec![]).unwrap();
        let b = g.add_node(["N"], vec![]).unwrap();
        let c = g.add_node(["N"], vec![]).unwrap();
        let d = g.add_node(["N"], vec![]).unwrap();
        g.add_edge(a, b, "E", vec![]).unwrap();
        g.add_edge(c, b, "E", vec![]).unwrap(); // opposite direction still connects weakly
        let comps = weakly_connected_components(&g, &EdgeFilter::all());
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = comps.iter().map(|c| c.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 3]);
        let _ = d;
    }

    #[test]
    fn triangle_has_clustering_one() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["N"], vec![]).unwrap();
        let b = g.add_node(["N"], vec![]).unwrap();
        let c = g.add_node(["N"], vec![]).unwrap();
        g.add_edge(a, b, "E", vec![]).unwrap();
        g.add_edge(b, c, "E", vec![]).unwrap();
        g.add_edge(c, a, "E", vec![]).unwrap();
        let cc = average_clustering_coefficient(&g, &EdgeFilter::all());
        assert!((cc - 1.0).abs() < 1e-12, "triangle clustering = {cc}");
    }

    #[test]
    fn line_has_clustering_zero() {
        let (g, _) = line(10);
        let cc = average_clustering_coefficient(&g, &EdgeFilter::all());
        assert_eq!(cc, 0.0);
    }

    #[test]
    fn star_center_has_zero_clustering() {
        let mut g = PropertyGraph::new();
        let hub = g.add_node(["N"], vec![]).unwrap();
        for _ in 0..5 {
            let leaf = g.add_node(["N"], vec![]).unwrap();
            g.add_edge(hub, leaf, "E", vec![]).unwrap();
        }
        assert_eq!(average_clustering_coefficient(&g, &EdgeFilter::all()), 0.0);
    }

    #[test]
    fn power_law_alpha_recovers_exponent() {
        // Degrees sampled deterministically from P(k) ∝ k^-2.5, k ≥ 1,
        // via inverse CDF on a uniform grid.
        let alpha_true = 2.5f64;
        let k_min = 10usize;
        let degrees: Vec<usize> = (1..5000)
            .map(|i| {
                let u = i as f64 / 5000.0;
                // continuous inverse CDF: k = kmin * (1-u)^{-1/(alpha-1)};
                // rounding at k ≥ 10 barely perturbs the MLE
                (k_min as f64 * (1.0 - u).powf(-1.0 / (alpha_true - 1.0))).round() as usize
            })
            .collect();
        let est = power_law_alpha(&degrees, k_min).unwrap();
        assert!(
            (est - alpha_true).abs() < 0.25,
            "estimated {est}, expected ≈ {alpha_true}"
        );
    }

    #[test]
    fn power_law_alpha_degenerate_inputs() {
        assert!(power_law_alpha(&[], 1).is_none());
        assert!(power_law_alpha(&[3], 1).is_none());
        // All-equal degrees at k_min=1: denominator ln(1/0.5) > 0, fine.
        assert!(power_law_alpha(&[1, 1, 1], 1).is_some());
    }

    #[test]
    fn scc_iterative_handles_deep_chains() {
        // A recursive Tarjan would blow the stack here; ours must not.
        let (g, _) = line(50_000);
        let sccs = strongly_connected_components(&g, &EdgeFilter::all());
        assert_eq!(sccs.len(), 50_000);
    }
}
