//! `kgm-runtime` — the hermetic runtime layer of the KGModel workspace.
//!
//! Every capability the workspace previously pulled from external crates
//! lives here, implemented on the standard library alone so the whole
//! workspace builds offline from an empty cargo registry:
//!
//! | module | replaces | provides |
//! |--------|----------|----------|
//! | [`rng`]   | `rand`        | seedable xoshiro256** PRNG, `gen_range`, `shuffle`, `sample` |
//! | [`sync`]  | `parking_lot` | non-poisoning `Mutex` / `RwLock` over `std::sync` |
//! | [`par`]   | `crossbeam`   | scope-based parallel map (`std::thread::scope`) |
//! | [`prop`]  | `proptest`    | seeded property tests with shrinking, `prop_assert!` |
//! | [`snapshot`] | `insta` | golden-file assertions with a `KGM_BLESS=1` bless workflow |
//! | [`bench`] | `criterion`   | warmup/calibrated micro-benchmarks with JSON reports |
//! | [`telemetry`] | `tracing` + `metrics` | hierarchical spans, counters/gauges/histograms, console + JSONL sinks |
//! | [`json`]  | `serde_json` (validation only) | JSON/JSONL well-formedness checks for emitted artefacts |
//! | [`fault`] | — | deterministic fault injection (`KGM_FAULT=<site>:<prob>:<seed>`), off by default |
//!
//! (The remaining removed dependency, `serde`, is replaced by hand-rolled
//! `to_text`/`from_text` codecs in `kgm-common` itself.)
//!
//! Everything is deterministic by construction: the PRNG is seeded
//! explicitly, property-test cases derive from a reported seed, and bench
//! sharding preserves input order.

pub mod bench;
pub mod env;
pub mod fault;
pub mod json;
pub mod par;
pub mod prop;
pub mod rng;
pub mod snapshot;
pub mod sync;
pub mod telemetry;

pub use par::{default_threads, map_shards, par_map};
pub use rng::{split_mix64, Rng, SampleUniform};
pub use sync::{CancelToken, Mutex, Published, RwLock};
pub use telemetry::{Collector, MetricsSnapshot, SpanGuard, SpanNode, Verbosity};
