//! Scoped parallelism over `std::thread::scope`.
//!
//! Replaces `crossbeam::thread::scope`: since Rust 1.63 the standard library
//! provides scoped threads that may borrow from the enclosing stack, which is
//! all the workspace ever used crossbeam for. The helpers here encode the one
//! pattern the embarrassingly-parallel analytics need — shard a slice, run a
//! closure per shard, collect the partial results in shard order.

use std::num::NonZeroUsize;
use std::ops::Range;

/// A sensible worker count: the machine's parallelism, or 4 if unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// The worker count requested through the `KGM_THREADS` environment
/// variable, falling back to [`default_threads`] when unset. This is the
/// one knob every parallel consumer (the chase engine, the paper harness)
/// reads, so `KGM_THREADS=1 …` forces any pipeline sequential. A malformed
/// or zero value is reported loudly (stderr + `config.env.invalid`
/// counter, see [`crate::env`]) before the fallback applies.
pub fn threads_from_env() -> usize {
    match crate::env::parsed::<usize>("KGM_THREADS", "a worker count >= 1") {
        Some(0) => {
            crate::env::invalid("KGM_THREADS", "0", "a worker count >= 1");
            default_threads()
        }
        Some(n) => n,
        None => default_threads(),
    }
}

/// Split an index range into at most `parts` contiguous sub-ranges of
/// near-equal length, in order. The concatenation of the result is exactly
/// `range`; an empty range yields no parts. This is the sharding schedule
/// [`map_shards`] applies to slices, exposed for callers that shard *index
/// spaces* (e.g. a delta range of a relation) instead of materialized
/// slices.
pub fn split_range(range: Range<usize>, parts: usize) -> Vec<Range<usize>> {
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(len);
    let chunk = len.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut start = range.start;
    while start < range.end {
        let end = (start + chunk).min(range.end);
        out.push(start..end);
        start = end;
    }
    out
}

/// Split `items` into at most `threads` contiguous shards and run `f` on
/// each shard in its own scoped thread. Results come back in shard order, so
/// the output is deterministic regardless of scheduling.
///
/// Degenerate inputs are handled without spawning: an empty slice returns an
/// empty vector, and `threads <= 1` (or a single shard) runs inline.
///
/// # Panics
/// Propagates the first worker panic, like `crossbeam::thread::scope`.
pub fn map_shards<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    let chunk = items.len().div_ceil(threads);
    if threads == 1 {
        return vec![f(items)];
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| scope.spawn(move || f(shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel shard worker panicked"))
            .collect()
    })
}

/// Parallel map over owned items: `f` runs on each element, sharded across
/// `threads` scoped workers; the output preserves input order.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_shards(items, threads, |shard| shard.iter().map(&f).collect::<Vec<R>>())
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_or_zero_kgm_threads_warns_and_falls_back() {
        // One test owns the KGM_THREADS mutations (env vars are
        // process-global; concurrent tests must not race on this key).
        let count = || {
            crate::telemetry::snapshot()
                .counters
                .get("config.env.invalid")
                .copied()
                .unwrap_or(0)
        };
        std::env::set_var("KGM_THREADS", "four");
        let before = count();
        assert_eq!(threads_from_env(), default_threads());
        assert_eq!(count(), before + 1, "malformed value must be reported");
        std::env::set_var("KGM_THREADS", "0");
        assert_eq!(threads_from_env(), default_threads());
        assert_eq!(count(), before + 2, "zero is invalid, not 'default'");
        std::env::set_var("KGM_THREADS", "3");
        assert_eq!(threads_from_env(), 3);
        assert_eq!(count(), before + 2);
        std::env::remove_var("KGM_THREADS");
    }

    #[test]
    fn shards_cover_all_items_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 999, 5000] {
            let sums = map_shards(&items, threads, |shard| shard.iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), 499_500, "threads={threads}");
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<i32> = (0..257).collect();
        let doubled = par_map(&items, 7, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out: Vec<u32> = map_shards(&Vec::<u8>::new(), 8, |_| 1u32);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_can_borrow_the_environment() {
        let big = vec![1u64; 10_000];
        let borrowed = &big;
        let counts = map_shards(&[0, 1, 2, 3], 4, |shard| {
            shard.len() + borrowed.len() // borrow proves scoping works
        });
        assert_eq!(counts, vec![10_001; 4]);
    }

    #[test]
    #[should_panic(expected = "shard worker panicked")]
    fn worker_panic_propagates() {
        map_shards(&[1, 2, 3, 4], 4, |shard| {
            if shard[0] == 3 {
                panic!("boom");
            }
            shard[0]
        });
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn split_range_covers_exactly_and_in_order() {
        for (range, parts) in [
            (0..10, 3),
            (5..6, 4),
            (0..0, 8),
            (7..107, 1),
            (3..1000, 16),
            (0..4, 100),
        ] {
            let shards = split_range(range.clone(), parts);
            let flat: Vec<usize> = shards.iter().flat_map(|r| r.clone()).collect();
            let expect: Vec<usize> = range.clone().collect();
            assert_eq!(flat, expect, "range={range:?} parts={parts}");
            assert!(shards.len() <= parts.max(1));
            assert!(shards.iter().all(|r| !r.is_empty()));
        }
    }

    #[test]
    fn split_range_matches_map_shards_schedule() {
        // Sharding indices and sharding the slice must agree, so a range
        // worker sees exactly the tuples a slice worker would.
        let items: Vec<usize> = (0..97).collect();
        for parts in [1, 2, 5, 13] {
            let by_slice = map_shards(&items, parts, |shard| shard.to_vec());
            let by_range: Vec<Vec<usize>> = split_range(0..items.len(), parts)
                .into_iter()
                .map(|r| items[r].to_vec())
                .collect();
            assert_eq!(by_slice, by_range, "parts={parts}");
        }
    }
}
