//! A micro-benchmark harness with warmup, iteration calibration and
//! percentile reporting, plus machine-readable JSON output.
//!
//! This replaces `criterion` for the workspace's five bench targets while
//! keeping the same authoring shape — `Criterion`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `b.iter(..)` — so a bench file ports
//! with an import swap. It is deliberately smaller than criterion: no
//! statistical regression tests, no gnuplot, just robust timing:
//!
//! 1. one warmup call, also used to calibrate an iteration count so each
//!    timed sample runs long enough (~`KGM_BENCH_TARGET_MS`, default 5 ms)
//!    to swamp timer quantization;
//! 2. `sample_size` timed samples (default 20, `group.sample_size(n)` or
//!    `KGM_BENCH_SAMPLES` override), each reporting mean ns/iteration;
//! 3. median/p95/min over the samples printed per benchmark and collected
//!    for JSON.
//!
//! [`bench_main!`](crate::bench_main) writes all results to
//! `target/kgm-bench/<target>.json` so CI can diff runs without scraping
//! stdout.

use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn env_usize(key: &str) -> Option<usize> {
    crate::env::parsed(key, "an unsigned integer")
}

/// One finished benchmark: identity plus per-iteration timings (ns).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (e.g. `chase/transitive_closure`).
    pub group: String,
    /// Benchmark id within the group (e.g. `scc/10000`).
    pub id: String,
    /// Mean ns/iteration of each timed sample, sorted ascending.
    pub samples_ns: Vec<f64>,
    /// Inner iterations per sample chosen by calibration.
    pub iters: u64,
}

impl BenchResult {
    /// Smallest observed sample (ns/iteration).
    pub fn min_ns(&self) -> f64 {
        self.samples_ns.first().copied().unwrap_or(0.0)
    }

    /// Median sample (ns/iteration).
    pub fn median_ns(&self) -> f64 {
        percentile(&self.samples_ns, 50.0)
    }

    /// 95th-percentile sample (ns/iteration).
    pub fn p95_ns(&self) -> f64 {
        percentile(&self.samples_ns, 95.0)
    }

    /// Mean over samples (ns/iteration).
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            0.0
        } else {
            self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Render nanoseconds human-readably (ns/µs/ms/s).
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark identity within a group: a function name, an input parameter,
/// or both (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("scc", 10_000)` → `scc/10000`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id, e.g. `BenchmarkId::from_parameter(400)` → `400`.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Root harness object; accumulates results across groups.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Fresh harness.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: env_usize("KGM_BENCH_SAMPLES").unwrap_or(20),
        }
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serialize every result as a JSON array (hand-rolled; the schema is
    /// flat and the only strings are benchmark names we escape ourselves).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"id\": \"{}\", \"iters\": {}, \
                 \"samples\": {}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"median_ns\": {:.1}, \"p95_ns\": {:.1}}}",
                escape_json(&r.group),
                escape_json(&r.id),
                r.iters,
                r.samples_ns.len(),
                r.min_ns(),
                r.mean_ns(),
                r.median_ns(),
                r.p95_ns(),
            ));
        }
        out.push_str("\n]\n");
        out
    }

    /// Write the JSON report to `target/kgm-bench/<name>.json` and mirror
    /// it to `<repo-root>/BENCH_<name>.json` (the accumulating perf
    /// trajectory tracked in version control); returns the primary path.
    pub fn write_json(&self, name: &str) -> std::io::Result<PathBuf> {
        let target = target_dir();
        let dir = target.join("kgm-bench");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.json"));
        let json = self.to_json();
        std::fs::write(&path, &json)?;
        // Best-effort mirror: the repo root is the parent of the target dir
        // (or the cwd when discovery fell back to a relative `target`).
        let root = match target.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let _ = std::fs::write(root.join(format!("BENCH_{name}.json")), &json);
        Ok(path)
    }
}

/// The cargo target directory, located from the running executable: walk
/// its ancestors past a `deps` component (bench/test binaries live at
/// `target/<profile>/deps/<bin>-<hash>`) or to a component literally named
/// `target` (plain binaries at `target/<profile>/<bin>`), falling back to a
/// relative `target`.
pub fn target_dir() -> PathBuf {
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.parent();
        while let Some(d) = dir {
            if d.file_name().is_some_and(|n| n == "deps") {
                if let Some(target) = d.parent().and_then(|p| p.parent()) {
                    return target.to_path_buf();
                }
            }
            if d.file_name().is_some_and(|n| n == "target") {
                return d.to_path_buf();
            }
            dir = d.parent();
        }
    }
    PathBuf::from("target")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (`KGM_BENCH_SAMPLES` overrides).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("KGM_BENCH_SAMPLES").is_err() {
            self.sample_size = n.max(2);
        }
        self
    }

    /// Run one benchmark; the closure drives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.record(id, bencher);
        self
    }

    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.record(id, bencher);
        self
    }

    /// Close the group. Results were already recorded and printed; this
    /// mirrors criterion's API so ported benches keep their `finish()` call.
    pub fn finish(self) {}

    fn record(&mut self, id: BenchmarkId, bencher: Bencher) {
        let mut samples = bencher.samples_ns;
        samples.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            group: self.name.clone(),
            id: id.label,
            samples_ns: samples,
            iters: bencher.iters,
        };
        println!(
            "{:<52} median {:>10}   p95 {:>10}   min {:>10}   ({} samples × {} iters)",
            format!("{}/{}", result.group, result.id),
            format_ns(result.median_ns()),
            format_ns(result.p95_ns()),
            format_ns(result.min_ns()),
            result.samples_ns.len(),
            result.iters,
        );
        self.criterion.results.push(result);
    }
}

/// Drives the timed closure: one warmup/calibration pass, then
/// `sample_size` timed samples.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size: sample_size.max(2),
            samples_ns: Vec::new(),
            iters: 1,
        }
    }

    /// Time `f`, recording mean ns/iteration per sample. The return value
    /// is passed through `black_box` so the computation is not optimized
    /// away.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warmup + calibration: size the inner loop so one sample takes
        // roughly the target wall time (cheap closures get thousands of
        // iterations, expensive ones run once per sample).
        let target_ms = env_usize("KGM_BENCH_TARGET_MS").unwrap_or(5) as u64;
        let target = Duration::from_millis(target_ms.max(1));
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed();
        let iters = if once.is_zero() {
            1_000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64
        };

        self.iters = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Declare a benchmark group: a function running each listed bench function
/// against a shared [`Criterion`].
///
/// ```ignore
/// bench_group!(benches, bench_parse, bench_translate);
/// bench_main!(benches);
/// ```
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::bench::Criterion) {
            $($bench_fn(criterion);)+
        }
    };
}

/// Emit `main()` for a bench target (`[[bench]] harness = false`): runs the
/// listed groups and writes the JSON report to
/// `target/kgm-bench/<target>.json`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; accept
            // and ignore them. `--list` must print nothing and exit so
            // `cargo test` (which runs bench targets in test mode) stays
            // quick.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            let mut criterion = $crate::bench::Criterion::new();
            $($group(&mut criterion);)+
            let name = $crate::bench::bench_target_name();
            match criterion.write_json(&name) {
                Ok(path) => println!("\nbench report: {}", path.display()),
                Err(e) => eprintln!("\nbench report not written: {e}"),
            }
        }
    };
}

/// The current bench target's name: executable stem with cargo's trailing
/// `-<16 hex>` disambiguation hash stripped (`chase-6a61…` → `chase`).
pub fn bench_target_name() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((base, hash))
            if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_calibrates() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        let noop = &c.results()[0];
        assert_eq!(noop.group, "unit");
        assert_eq!(noop.id, "noop");
        assert!(noop.iters >= 1);
        assert!(noop.samples_ns.len() >= 2);
        assert!(noop.min_ns() <= noop.median_ns());
        assert!(noop.median_ns() <= noop.p95_ns());
        assert_eq!(c.results()[1].id, "sum/64");
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("scc", 10_000).label, "scc/10000");
        assert_eq!(BenchmarkId::from_parameter(400).label, "400");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
        assert_eq!(BenchmarkId::from(String::from("owned")).label, "owned");
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let mut c = Criterion::new();
        c.benchmark_group("g\"x").sample_size(2).bench_function("f", |b| b.iter(|| 0));
        let json = c.to_json();
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains("\\\"x\""), "group name escaped: {json}");
        assert!(json.contains("\"median_ns\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_500.0), "12.50 µs");
        assert_eq!(format_ns(12_500_000.0), "12.50 ms");
        assert_eq!(format_ns(2_000_000_000.0), "2.000 s");
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn bench_target_name_strips_hash() {
        // Indirect: the helper must at least return something non-empty for
        // the running test binary and strip a well-formed hash suffix.
        assert!(!bench_target_name().is_empty());
    }
}
