//! Deterministic fault injection — off by default, zero-dep like
//! [`crate::rng`] and [`crate::telemetry`].
//!
//! Production code marks *injection sites* with [`should_inject`] (or the
//! message-building convenience [`trip`]). A site fires only when the
//! process is armed, either through the environment:
//!
//! ```text
//! KGM_FAULT=<site>:<prob>:<seed>     # e.g. KGM_FAULT=chase.insert:0.05:42
//! ```
//!
//! or programmatically via [`set`] (tests). `<site>` names one injection
//! site (`*` arms every site), `<prob>` is the per-call injection
//! probability in `[0, 1]`, and `<seed>` makes the decision sequence
//! deterministic: the n-th check of a given site under a given seed always
//! produces the same verdict, regardless of wall clock or thread
//! interleaving of *other* sites. Arming (or re-arming) resets the call
//! counter, so a test can replay the exact same fault schedule twice.
//!
//! Known sites (grep for the literal to find the code path):
//!
//! | site           | layer       | effect when fired                         |
//! |----------------|-------------|-------------------------------------------|
//! | `chase.insert` | kgm-vadalog | `KgmError::Internal` from the insert loop |
//! | `chase.shard`  | kgm-vadalog | panic inside a shard worker (exercises `catch_unwind`) |
//! | `csv.import`   | kgm-pgstore | `KgmError::Internal` before parsing       |
//!
//! The disarmed fast path is one relaxed atomic load — cheap enough to sit
//! on the chase's per-fact insert path.

use crate::rng::split_mix64;
use crate::sync::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// One armed fault: a site pattern, a per-call probability and the seed of
/// the deterministic decision stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Injection-site name, or `*` to match every site.
    pub site: String,
    /// Per-call injection probability in `[0, 1]`.
    pub prob: f64,
    /// Seed of the decision stream (same seed ⇒ same verdict sequence).
    pub seed: u64,
}

impl FaultConfig {
    /// Parse the `KGM_FAULT` spec `<site>:<prob>:<seed>`.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "expected <site>:<prob>:<seed>, got {} field(s) in `{spec}`",
                parts.len()
            ));
        }
        let site = parts[0].trim();
        if site.is_empty() {
            return Err("empty site name".to_string());
        }
        let prob: f64 = parts[1]
            .trim()
            .parse()
            .map_err(|_| format!("bad probability `{}`", parts[1]))?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!("probability {prob} outside [0, 1]"));
        }
        let seed: u64 = parts[2]
            .trim()
            .parse()
            .map_err(|_| format!("bad seed `{}`", parts[2]))?;
        Ok(FaultConfig {
            site: site.to_string(),
            prob,
            seed,
        })
    }
}

/// Fast disarmed-path gate: checked before anything else.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The armed config (read under `ARMED`).
static CONFIG: RwLock<Option<FaultConfig>> = RwLock::new(None);
/// Per-arming call counter driving the deterministic decision stream.
static CALLS: AtomicU64 = AtomicU64::new(0);
/// Process-lifetime totals (monotonic; callers take deltas).
static CHECKED: AtomicU64 = AtomicU64::new(0);
static INJECTED: AtomicU64 = AtomicU64::new(0);
/// One-shot environment initialization ([`set`] pre-empts it).
static INIT: OnceLock<()> = OnceLock::new();

fn ensure_env_init() {
    INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("KGM_FAULT") {
            let spec = spec.trim();
            if !spec.is_empty() {
                match FaultConfig::parse(spec) {
                    Ok(cfg) => apply(Some(cfg)),
                    Err(e) => eprintln!("KGM_FAULT ignored: {e}"),
                }
            }
        }
    });
}

fn apply(cfg: Option<FaultConfig>) {
    // Order matters: publish the config before flipping the gate on, and
    // flip it off before clearing, so readers never see an armed gate with
    // no config.
    if cfg.is_none() {
        ARMED.store(false, Ordering::Release);
    }
    CALLS.store(0, Ordering::Relaxed);
    let armed = cfg.is_some();
    *CONFIG.write() = cfg;
    if armed {
        ARMED.store(true, Ordering::Release);
    }
}

/// Arm (`Some`) or disarm (`None`) fault injection for the whole process,
/// overriding any `KGM_FAULT` environment spec. Re-arming resets the call
/// counter, so the decision stream replays identically.
pub fn set(cfg: Option<FaultConfig>) {
    let _ = INIT.set(()); // suppress a later env re-initialization
    apply(cfg);
}

/// Total site checks made while armed (process lifetime, monotonic).
pub fn checked_total() -> u64 {
    CHECKED.load(Ordering::Relaxed)
}

/// Total faults injected (process lifetime, monotonic).
pub fn injected_total() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Should the fault at `site` fire now? Deterministic given the armed
/// `(site, prob, seed)` and the number of matching checks so far.
pub fn should_inject(site: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        ensure_env_init();
        if !ARMED.load(Ordering::Relaxed) {
            return false;
        }
    }
    let guard = CONFIG.read();
    let Some(cfg) = guard.as_ref() else {
        return false;
    };
    if cfg.site != "*" && cfg.site != site {
        return false;
    }
    CHECKED.fetch_add(1, Ordering::Relaxed);
    let n = CALLS.fetch_add(1, Ordering::Relaxed);
    // Independent draw per call: mix seed, site and call index through
    // split_mix64 and compare the top 53 bits against the probability.
    let mut state = cfg
        .seed
        .wrapping_add(site_hash(site))
        .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let draw = (split_mix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
    let fire = draw < cfg.prob;
    if fire {
        INJECTED.fetch_add(1, Ordering::Relaxed);
        crate::telemetry::counter_add("fault.injected", 1);
    }
    fire
}

/// [`should_inject`] plus the canonical error message: `Some("injected
/// fault at <site>")` when the site fires. Callers wrap the message in
/// their layer's error type.
pub fn trip(site: &str) -> Option<String> {
    should_inject(site).then(|| format!("injected fault at {site}"))
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a, enough to decorrelate site names in the seed mix.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;

    /// The armed config is process-global; tests that arm it must not
    /// interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let cfg = FaultConfig::parse("chase.insert:0.25:42").unwrap();
        assert_eq!(cfg.site, "chase.insert");
        assert!((cfg.prob - 0.25).abs() < 1e-12);
        assert_eq!(cfg.seed, 42);
        assert_eq!(FaultConfig::parse("*:1:0").unwrap().site, "*");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultConfig::parse("").is_err());
        assert!(FaultConfig::parse("site:0.5").is_err(), "missing seed");
        assert!(FaultConfig::parse("site:1.5:1").is_err(), "prob > 1");
        assert!(FaultConfig::parse("site:-0.1:1").is_err(), "prob < 0");
        assert!(FaultConfig::parse("site:x:1").is_err(), "non-numeric prob");
        assert!(FaultConfig::parse("site:0.5:x").is_err(), "non-numeric seed");
        assert!(FaultConfig::parse(":0.5:1").is_err(), "empty site");
    }

    #[test]
    fn disarmed_sites_never_fire() {
        let _g = LOCK.lock();
        set(None);
        for _ in 0..1000 {
            assert!(!should_inject("chase.insert"));
        }
        assert!(trip("chase.insert").is_none());
    }

    #[test]
    fn probability_bounds_are_exact() {
        let _g = LOCK.lock();
        set(Some(FaultConfig::parse("s:0:7").unwrap()));
        assert!((0..500).all(|_| !should_inject("s")), "prob 0 never fires");
        set(Some(FaultConfig::parse("s:1:7").unwrap()));
        assert!((0..500).all(|_| should_inject("s")), "prob 1 always fires");
        set(None);
    }

    #[test]
    fn decision_stream_is_deterministic_and_site_scoped() {
        let _g = LOCK.lock();
        let arm = || set(Some(FaultConfig::parse("s:0.3:99").unwrap()));
        arm();
        let a: Vec<bool> = (0..200).map(|_| should_inject("s")).collect();
        arm(); // re-arming resets the call counter
        let b: Vec<bool> = (0..200).map(|_| should_inject("s")).collect();
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert!(a.iter().any(|&x| x), "prob 0.3 over 200 calls should fire");
        assert!(!a.iter().all(|&x| x), "…but not every time");
        // A different site never fires under a site-scoped config.
        arm();
        assert!((0..200).all(|_| !should_inject("other")));
        // The wildcard site arms everything.
        set(Some(FaultConfig::parse("*:1:1").unwrap()));
        assert!(should_inject("anything"));
        assert_eq!(
            trip("x").as_deref(),
            Some("injected fault at x"),
            "trip builds the canonical message"
        );
        set(None);
    }

    #[test]
    fn counters_accumulate() {
        let _g = LOCK.lock();
        set(Some(FaultConfig::parse("c:1:5").unwrap()));
        let (c0, i0) = (checked_total(), injected_total());
        for _ in 0..10 {
            should_inject("c");
        }
        assert_eq!(checked_total() - c0, 10);
        assert_eq!(injected_total() - i0, 10);
        set(None);
    }
}
