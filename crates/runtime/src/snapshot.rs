//! Golden snapshot testing: compare generated text against a checked-in
//! file, with an explicit bless workflow.
//!
//! A snapshot test renders some artefact (an MTV compilation, an SSST
//! translation, a DDL script) to a string and calls [`assert_snapshot`]
//! with the path of its golden file. The comparison is byte-exact:
//!
//! - **normal runs** fail with a line diff when the artefact drifts from
//!   the golden, so any semantic change in a generator becomes a
//!   reviewable diff;
//! - **`KGM_BLESS=1`** regenerates the golden in place (creating parent
//!   directories) instead of comparing — the workflow after an
//!   *intentional* change;
//! - **`KGM_GOLDEN_FROZEN=1`** (set by CI) forbids blessing and turns a
//!   *missing* golden into an error, so snapshots can never be silently
//!   (re)created on a build machine.

use std::fs;
use std::path::Path;

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1" || v == "true").unwrap_or(false)
}

/// A compact line diff of `expected` vs `actual` for failure messages:
/// every differing line as `-expected` / `+actual`, capped to keep panics
/// readable.
fn line_diff(expected: &str, actual: &str) -> String {
    const MAX_LINES: usize = 40;
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0usize;
    for i in 0..e.len().max(a.len()) {
        let el = e.get(i).copied();
        let al = a.get(i).copied();
        if el == al {
            continue;
        }
        if shown >= MAX_LINES {
            out.push_str("  ... (diff truncated)\n");
            break;
        }
        if let Some(l) = el {
            out.push_str(&format!("  -{:>4} | {l}\n", i + 1));
        }
        if let Some(l) = al {
            out.push_str(&format!("  +{:>4} | {l}\n", i + 1));
        }
        shown += 1;
    }
    out
}

/// Compare `actual` against the golden file at `path`.
///
/// Behaviour is governed by two environment variables (see the module
/// docs): `KGM_BLESS=1` rewrites the golden instead of comparing, and
/// `KGM_GOLDEN_FROZEN=1` forbids blessing and missing goldens. Panics on
/// mismatch with a line diff and the bless recipe.
pub fn assert_snapshot(path: impl AsRef<Path>, actual: &str) {
    let path = path.as_ref();
    let bless = env_flag("KGM_BLESS");
    let frozen = env_flag("KGM_GOLDEN_FROZEN");
    if bless && frozen {
        panic!(
            "[snapshot] {}: KGM_BLESS=1 while KGM_GOLDEN_FROZEN=1 — \
             blessing goldens is forbidden in CI",
            path.display()
        );
    }
    if bless {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("[snapshot] mkdir {}: {e}", dir.display()));
        }
        // Skip the write when the content is already identical, so a bless
        // run on a clean tree leaves mtimes (and `git status`) untouched.
        if fs::read_to_string(path).ok().as_deref() != Some(actual) {
            fs::write(path, actual)
                .unwrap_or_else(|e| panic!("[snapshot] write {}: {e}", path.display()));
        }
        return;
    }
    let expected = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => panic!(
            "[snapshot] {}: cannot read golden ({e})\n\
             bless it with: KGM_BLESS=1 cargo test",
            path.display()
        ),
    };
    if expected != actual {
        panic!(
            "[snapshot] {}: output differs from golden\n{}\
             accept the change with: KGM_BLESS=1 cargo test",
            path.display(),
            line_diff(&expected, actual)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Serialize env-mutating tests (the process environment is global).
    fn with_env<R>(pairs: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
        use crate::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock();
        let saved: Vec<(String, Option<String>)> = pairs
            .iter()
            .map(|(k, _)| (k.to_string(), std::env::var(k).ok()))
            .collect();
        for (k, v) in pairs {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
        let out = f();
        for (k, v) in saved {
            match v {
                Some(v) => std::env::set_var(&k, v),
                None => std::env::remove_var(&k),
            }
        }
        out
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kgm_snapshot_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn bless_creates_then_match_passes() {
        let p = tmp_path("bless");
        let _ = fs::remove_file(&p);
        with_env(
            &[("KGM_BLESS", Some("1")), ("KGM_GOLDEN_FROZEN", None)],
            || assert_snapshot(&p, "hello\nworld\n"),
        );
        assert_eq!(fs::read_to_string(&p).unwrap(), "hello\nworld\n");
        with_env(
            &[("KGM_BLESS", None), ("KGM_GOLDEN_FROZEN", None)],
            || assert_snapshot(&p, "hello\nworld\n"),
        );
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn mismatch_panics_with_line_diff() {
        let p = tmp_path("diff");
        fs::write(&p, "same\nold line\n").unwrap();
        let err = with_env(
            &[("KGM_BLESS", None), ("KGM_GOLDEN_FROZEN", None)],
            || {
                catch_unwind(AssertUnwindSafe(|| {
                    assert_snapshot(&p, "same\nnew line\n")
                }))
                .unwrap_err()
            },
        );
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("differs from golden"), "{msg}");
        assert!(msg.contains("old line"), "{msg}");
        assert!(msg.contains("new line"), "{msg}");
        assert!(msg.contains("KGM_BLESS=1"), "{msg}");
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn frozen_mode_rejects_bless_and_missing_goldens() {
        let p = tmp_path("frozen");
        let _ = fs::remove_file(&p);
        // Bless under frozen must panic…
        let err = with_env(
            &[("KGM_BLESS", Some("1")), ("KGM_GOLDEN_FROZEN", Some("1"))],
            || {
                catch_unwind(AssertUnwindSafe(|| assert_snapshot(&p, "x"))).unwrap_err()
            },
        );
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("forbidden in CI"), "{msg}");
        assert!(!p.exists(), "frozen bless must not write the golden");
        // …and a missing golden is an error, not a silent create.
        let err = with_env(
            &[("KGM_BLESS", None), ("KGM_GOLDEN_FROZEN", Some("1"))],
            || {
                catch_unwind(AssertUnwindSafe(|| assert_snapshot(&p, "x"))).unwrap_err()
            },
        );
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("cannot read golden"), "{msg}");
    }

    #[test]
    fn diff_is_truncated_on_long_outputs() {
        let expected: String = (0..100).map(|i| format!("e{i}\n")).collect();
        let actual: String = (0..100).map(|i| format!("a{i}\n")).collect();
        let d = line_diff(&expected, &actual);
        assert!(d.contains("diff truncated"));
        assert!(d.lines().count() <= 2 * 40 + 1);
    }
}
