//! A minimal JSON well-formedness checker (RFC 8259 grammar, no DOM).
//!
//! The workspace emits hand-rolled JSON in several places (bench reports,
//! telemetry traces, run reports); CI needs to assert those artefacts parse
//! without shelling out to python or pulling in serde. [`validate`] walks
//! the text with a recursive-descent parser and reports the first syntax
//! error with its byte offset. It builds no value tree — validation only.

/// Check that `input` is exactly one valid JSON value (plus whitespace).
/// Returns `Err(message)` with a byte offset on the first violation.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("bad number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("bad fraction"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("bad exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

/// Check that every non-empty line of `input` is a valid JSON value — the
/// JSONL shape of the telemetry trace sink.
pub fn validate_jsonl(input: &str) -> Result<(), String> {
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"a\\n\\u00e9\"",
            "[]",
            "{}",
            "[1, [2, {\"a\": null}], \"x\"]",
            "{\"k\": {\"nested\": [1.0, 2e-2]}, \"s\": \"\\\"\"}",
            "  { \"ws\" : [ ] }  ",
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\": 1,}",
            "{'a': 1}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\x escape\"",
            "tru",
            "null null",
            "[1] 2",
            "\"raw\ncontrol\"",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc:?}");
        }
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = validate("[1, }").unwrap_err();
        assert!(err.contains("at byte 4"), "{err}");
    }

    #[test]
    fn jsonl_validates_per_line() {
        assert!(validate_jsonl("{\"a\": 1}\n{\"b\": 2}\n\n").is_ok());
        let err = validate_jsonl("{\"a\": 1}\n{bad}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn depth_limit_guards_recursion() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(validate(&deep).is_err());
    }
}
