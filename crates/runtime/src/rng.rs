//! A seedable, portable PRNG: xoshiro256** seeded through SplitMix64.
//!
//! This is the only randomness source in the workspace. The synthetic
//! financial registry, the property-test harness and any sampling code all
//! draw from [`Rng`], so a single `(algorithm, seed)` pair pins every
//! workload byte-for-byte across platforms and compiler versions — the
//! hermetic-build analogue of `rand::rngs::StdRng::seed_from_u64`, without
//! the external crate.
//!
//! xoshiro256** (Blackman & Vigna) passes BigCrush, has a 2²⁵⁶−1 period and
//! needs four words of state; SplitMix64 is the recommended seeder because
//! it diffuses low-entropy seeds (0, 1, 42…) into well-mixed state.

use std::ops::Range;

/// SplitMix64 step — also usable standalone to derive per-case seeds.
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace PRNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Deterministically seed from a single `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics on an empty range, matching `rand`'s contract.
    #[inline]
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded(slice.len() as u64) as usize])
        }
    }

    /// Sample `k` distinct elements without replacement (partial
    /// Fisher–Yates over indices). Returns fewer than `k` if the slice is
    /// shorter.
    pub fn sample<T: Clone>(&mut self, slice: &[T], k: usize) -> Vec<T> {
        let k = k.min(slice.len());
        let mut idx: Vec<usize> = (0..slice.len()).collect();
        for i in 0..k {
            let j = i + self.bounded((idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx[..k].iter().map(|&i| slice[i].clone()).collect()
    }

    /// Uniform value in `[0, bound)` by the multiply-shift reduction
    /// (Lemire). The residual bias is below 2⁻⁶⁴ — irrelevant for synthetic
    /// data and testing, and it keeps sampling branch-free and portable.
    #[inline]
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                // Width via wrapping i128-free arithmetic: the span of any
                // 64-bit-or-smaller integer range fits in u64.
                let span = (hi as i128 - lo as i128) as u64;
                let off = rng.bounded(span);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let v = lo + rng.gen_f64() * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v < hi {
            v
        } else {
            lo
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        f64::sample(rng, lo as f64, hi as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_answer_pins_the_algorithm() {
        // Golden values: changing the seeder or generator silently would
        // change every synthetic workload — this test makes it loud.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn gen_range_int_stays_in_bounds_and_covers() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..10 drawn: {seen:?}");
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.gen_range(-15_000i32..5_000);
            assert!((-15_000..5_000).contains(&v));
        }
    }

    #[test]
    fn gen_range_f64_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(0.01f64..1.0);
            assert!((0.01..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_respects_probability_roughly() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay in place");
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let mut r = Rng::seed_from_u64(5);
        let pool: Vec<u32> = (0..20).collect();
        let s = r.sample(&pool, 8);
        assert_eq!(s.len(), 8);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 8, "no repeats");
        assert_eq!(r.sample(&pool, 100).len(), 20, "clamped to pool size");
        assert!(r.sample(&Vec::<u32>::new(), 3).is_empty());
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut r = Rng::seed_from_u64(1);
        assert!(r.choose(&Vec::<u8>::new()).is_none());
        assert_eq!(r.choose(&[7u8]), Some(&7));
    }
}
