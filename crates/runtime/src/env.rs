//! Environment-variable configuration that fails loudly.
//!
//! Every `KGM_*` knob used to be read with `.parse().ok()`, so a typo like
//! `KGM_DEADLINE_MS=5s` silently meant "no deadline" — the opposite of what
//! the operator asked for. [`parsed`] keeps the knobs optional (unset is
//! still `None`) but makes a *malformed* value visible twice: a stderr
//! warning naming the variable, the rejected value, and the expected shape,
//! plus a `config.env.invalid` telemetry counter that run reports and tests
//! can assert on. The malformed value is then ignored (the caller's default
//! applies) so a bad environment degrades a run instead of aborting it.

use std::str::FromStr;

/// Read and parse `key` from the environment.
///
/// - unset → `None`, silently (an absent knob is the normal case);
/// - parses → `Some(value)` (surrounding whitespace is tolerated);
/// - malformed → `None`, after bumping the `config.env.invalid` counter and
///   printing a stderr warning that names the variable, the offending
///   value, and `expected` (a human description like `"milliseconds (an
///   unsigned integer)"`).
pub fn parsed<T: FromStr>(key: &str, expected: &str) -> Option<T> {
    let raw = std::env::var(key).ok()?;
    match raw.trim().parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => {
            invalid(key, &raw, expected);
            None
        }
    }
}

/// Report one malformed configuration value: `config.env.invalid` counter
/// plus a stderr note. Public so callers with extra validation (e.g. "must
/// be ≥ 1") can reject a parseable-but-out-of-range value the same way.
pub fn invalid(key: &str, raw: &str, expected: &str) {
    crate::telemetry::counter_add("config.env.invalid", 1);
    eprintln!("warning: ignoring {key}={raw:?}: expected {expected}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry;

    fn invalid_count() -> i64 {
        telemetry::snapshot()
            .counters
            .get("config.env.invalid")
            .copied()
            .unwrap_or(0)
    }

    // Each test uses a unique variable name: env vars are process-global
    // and the test harness runs tests concurrently.

    #[test]
    fn unset_is_silently_none() {
        let before = invalid_count();
        assert_eq!(parsed::<usize>("KGM_TEST_ENV_UNSET", "an integer"), None);
        assert_eq!(invalid_count(), before);
    }

    #[test]
    fn well_formed_values_parse_with_whitespace() {
        std::env::set_var("KGM_TEST_ENV_OK", " 42 ");
        let before = invalid_count();
        assert_eq!(parsed::<u64>("KGM_TEST_ENV_OK", "an integer"), Some(42));
        assert_eq!(invalid_count(), before);
        std::env::remove_var("KGM_TEST_ENV_OK");
    }

    #[test]
    fn malformed_values_warn_and_count() {
        std::env::set_var("KGM_TEST_ENV_BAD", "5s");
        let before = invalid_count();
        assert_eq!(
            parsed::<u64>("KGM_TEST_ENV_BAD", "milliseconds (an unsigned integer)"),
            None
        );
        assert_eq!(invalid_count(), before + 1, "config.env.invalid must tick");
        std::env::remove_var("KGM_TEST_ENV_BAD");
    }
}
