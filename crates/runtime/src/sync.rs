//! Thin synchronization wrappers over `std::sync`.
//!
//! The workspace previously used `parking_lot` for its ergonomic, non-poisoning
//! guards. These wrappers keep that calling convention — `lock()`, `read()`,
//! `write()` with no `Result` — on top of the standard library: a poisoned
//! lock is recovered rather than propagated, since every protected structure
//! here (interner tables, Skolem tables) stays consistent under panic
//! (append-only maps mutated in a single statement).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{self, Arc, PoisonError};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A shared cooperative-cancellation flag.
///
/// Clones observe the same flag (it is an `Arc` internally), so a caller
/// can hand one clone to a long-running computation — the chase engine
/// polls it inside its binding loops and shard workers — and trip the other
/// from any thread. Cancellation is cooperative and one-way: once
/// [`CancelToken::cancel`] is called, every observer sees
/// [`CancelToken::is_cancelled`] forever.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = vec![];
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock stays usable.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn into_inner_unwraps() {
        assert_eq!(Mutex::new(3).into_inner(), 3);
        assert_eq!(RwLock::new(4).into_inner(), 4);
    }

    #[test]
    fn cancel_token_is_shared_across_clones_and_threads() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let observer = token.clone();
        std::thread::spawn(move || observer.cancel()).join().unwrap();
        assert!(token.is_cancelled(), "cancel on a clone is visible");
        token.cancel(); // idempotent
        assert!(token.clone().is_cancelled());
    }
}
