//! Thin synchronization wrappers over `std::sync`.
//!
//! The workspace previously used `parking_lot` for its ergonomic, non-poisoning
//! guards. These wrappers keep that calling convention — `lock()`, `read()`,
//! `write()` with no `Result` — on top of the standard library: a poisoned
//! lock is recovered rather than propagated, since every protected structure
//! here (interner tables, Skolem tables) stays consistent under panic
//! (append-only maps mutated in a single statement).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{self, Arc, PoisonError};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A read-mostly publication cell: one writer replaces the current value,
/// many readers grab a cheap shared handle to it.
///
/// This is the epoch-publication primitive behind the serving layer: the
/// writer calls [`Published::publish`] after each materialization step, and
/// every reader's [`Published::load`] returns an `Arc` of *some* published
/// value — never a torn or in-progress one, because the swap replaces the
/// whole `Arc` atomically under the lock. Readers hold the returned handle
/// for as long as they like; the value's memory is reclaimed when the last
/// handle (including the cell's own, after a later `publish`) drops.
///
/// The lock is held only for the duration of an `Arc` clone or swap (no
/// user code runs under it), so readers never block the writer for longer
/// than a pointer exchange and contention stays negligible even when many
/// reader threads re-`load` frequently.
#[derive(Debug)]
pub struct Published<T>(RwLock<Arc<T>>);

impl<T> Published<T> {
    /// A cell currently publishing `initial`.
    pub fn new(initial: T) -> Self {
        Published(RwLock::new(Arc::new(initial)))
    }

    /// Replace the published value; readers loading from now on see `value`.
    /// Returns the handle for the newly published value.
    pub fn publish(&self, value: T) -> Arc<T> {
        self.publish_arc(Arc::new(value))
    }

    /// [`Published::publish`] for a value the caller already wrapped.
    pub fn publish_arc(&self, value: Arc<T>) -> Arc<T> {
        *self.0.write() = Arc::clone(&value);
        value
    }

    /// A shared handle to the currently published value.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.0.read())
    }
}

impl<T: Default> Default for Published<T> {
    fn default() -> Self {
        Published::new(T::default())
    }
}

/// A shared cooperative-cancellation flag.
///
/// Clones observe the same flag (it is an `Arc` internally), so a caller
/// can hand one clone to a long-running computation — the chase engine
/// polls it inside its binding loops and shard workers — and trip the other
/// from any thread. Cancellation is cooperative and one-way: once
/// [`CancelToken::cancel`] is called, every observer sees
/// [`CancelToken::is_cancelled`] forever.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = vec![];
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock stays usable.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn into_inner_unwraps() {
        assert_eq!(Mutex::new(3).into_inner(), 3);
        assert_eq!(RwLock::new(4).into_inner(), 4);
    }

    #[test]
    fn published_swaps_whole_values_and_reclaims_old_ones() {
        let cell = Published::new(vec![1u64]);
        let pinned = cell.load();
        assert_eq!(*pinned, vec![1]);
        let fresh = cell.publish(vec![2, 3]);
        assert_eq!(*fresh, vec![2, 3]);
        // The pinned handle still sees the epoch it loaded…
        assert_eq!(*pinned, vec![1]);
        assert_eq!(*cell.load(), vec![2, 3]);
        // …and dropping it releases the last reference to the old value.
        let weak = Arc::downgrade(&pinned);
        drop(pinned);
        assert!(weak.upgrade().is_none(), "unpinned epoch must be reclaimed");
    }

    #[test]
    fn published_loads_are_consistent_under_concurrent_publishes() {
        let cell = Arc::new(Published::new((0u64, 0u64)));
        let writer = {
            let cell = cell.clone();
            std::thread::spawn(move || {
                for i in 1..=1000u64 {
                    cell.publish((i, i * 2));
                }
            })
        };
        // Every load must observe some published pair, never a torn one.
        for _ in 0..1000 {
            let v = cell.load();
            assert_eq!(v.1, v.0 * 2, "torn read: {v:?}");
        }
        writer.join().unwrap();
        assert_eq!(*cell.load(), (1000, 2000));
    }

    #[test]
    fn cancel_token_is_shared_across_clones_and_threads() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let observer = token.clone();
        std::thread::spawn(move || observer.cancel()).join().unwrap();
        assert!(token.is_cancelled(), "cancel on a clone is visible");
        token.cancel(); // idempotent
        assert!(token.clone().is_cancelled());
    }
}
