//! Zero-dependency observability: hierarchical wall-clock spans, a process
//! metrics registry, and pluggable sinks.
//!
//! The workspace previously timed hot paths with scattered `Instant` pairs
//! and free-form `println!`s. This module gives every subsystem one code
//! path for timing and counting:
//!
//! - **Spans** — RAII guards ([`SpanGuard`], usually via the [`span!`]
//!   macro) form a per-thread tree of named, timed regions. Counters can be
//!   attached to the innermost open span ([`record`]) and fully-measured
//!   leaf children can be appended ([`annotate_child`], used for per-rule
//!   chase metrics whose time is accumulated rather than scoped).
//! - **Metrics** — a global registry of monotonic counters, gauges and
//!   log₂-bucketed histograms ([`counter_add`], [`gauge_set`],
//!   [`histogram_record`]), snapshot-able for machine-readable reports.
//! - **Sinks** — controlled by the `KGM_LOG` environment variable
//!   (`off|summary|span|debug`, default `off`):
//!     - `summary`: one console line per finished root span;
//!     - `span`: an indented console tree per finished root span **and** a
//!       JSONL trace file under `target/kgm-trace/` (one JSON object per
//!       span, depth-first), also forceable via [`force_trace`];
//!     - `debug`: like `span`, but spans opened at [`Level::Debug`] are
//!       kept too.
//! - **Collectors** — [`Collector::install`] captures finished root spans
//!   of the current thread programmatically (regardless of `KGM_LOG`), the
//!   basis of `paper-harness --profile` run reports.
//!
//! Timing is measured whenever *anyone* is listening (sink, collector, or a
//! [`time`] caller that needs the elapsed value); with `KGM_LOG=off` and no
//! collector, `span!` is a cheap no-op.
//!
//! **Spans are thread-local.** The span tree, the active-span stack, and any
//! installed [`Collector`] all live in thread-local storage, so a span
//! opened on a `kgm_runtime::par` worker thread lands in that worker's
//! (unobserved) tree, not the caller's. Parallel code must therefore emit
//! spans and [`record`] calls only from the coordinating thread — the
//! sharded chase, for instance, times whole shard batches from the writer
//! side and folds per-worker counts into the span after the join. The
//! global *metrics* registry ([`counter_add`] & friends) is shared and safe
//! to touch from any thread.

use crate::sync::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

// ---------------------------------------------------------------------
// Verbosity
// ---------------------------------------------------------------------

/// Console-sink verbosity, parsed once from `KGM_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// No console output, no trace file (the default).
    Off,
    /// One line per finished root span.
    Summary,
    /// Indented span tree per finished root span + JSONL trace file.
    Span,
    /// Like `Span`, and [`Level::Debug`] spans are kept too.
    Debug,
}

/// Span importance: `Debug` spans are dropped unless `KGM_LOG=debug` (or a
/// collector is installed, which always captures everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Always kept when telemetry is on.
    Info,
    /// Kept only under `KGM_LOG=debug` or a collector.
    Debug,
}

impl Verbosity {
    fn parse(s: &str) -> Verbosity {
        match s.trim().to_ascii_lowercase().as_str() {
            "summary" => Verbosity::Summary,
            "span" | "spans" | "trace" => Verbosity::Span,
            "debug" | "all" => Verbosity::Debug,
            _ => Verbosity::Off,
        }
    }
}

/// The active verbosity (`KGM_LOG`, read once per process).
pub fn verbosity() -> Verbosity {
    static V: OnceLock<Verbosity> = OnceLock::new();
    *V.get_or_init(|| {
        std::env::var("KGM_LOG")
            .map(|s| Verbosity::parse(&s))
            .unwrap_or(Verbosity::Off)
    })
}

static FORCE_TRACE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Force the JSONL trace sink on (equivalent to `KGM_LOG=span` for the file
/// sink only) — used by `paper-harness --trace`.
pub fn force_trace(on: bool) {
    FORCE_TRACE.store(on, std::sync::atomic::Ordering::Relaxed);
}

fn trace_enabled() -> bool {
    verbosity() >= Verbosity::Span || FORCE_TRACE.load(std::sync::atomic::Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------

/// One finished span: a named, timed region with attached counters and
/// nested children.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanNode {
    /// Dotted span name, e.g. `chase.stratum`.
    pub name: String,
    /// Free-form detail (stratum number, predicate name, …).
    pub detail: String,
    /// Wall-clock duration in nanoseconds.
    pub elapsed_ns: u128,
    /// Counters recorded while the span was the innermost open one.
    pub counters: Vec<(String, i64)>,
    /// Nested spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Elapsed milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns as f64 / 1e6
    }

    /// Total number of spans in this subtree (including `self`).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// The value of counter `key` on this span, if recorded.
    pub fn counter(&self, key: &str) -> Option<i64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    /// Render the subtree as the human-readable console tree.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let label = if self.detail.is_empty() {
            self.name.clone()
        } else {
            format!("{} [{}]", self.name, self.detail)
        };
        let _ = write!(out, "▸ {label:<w$} {:>10}", fmt_ns(self.elapsed_ns), w = 44usize.saturating_sub(depth * 2));
        for (k, v) in &self.counters {
            let _ = write!(out, "  {k}={v}");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Serialize the subtree as one JSON object (hand-rolled, matching the
    /// hermetic-codec policy of the workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"detail\": \"{}\", \"elapsed_ns\": {}, \"counters\": {{",
            escape_json(&self.name),
            escape_json(&self.detail),
            self.elapsed_ns
        );
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {v}", escape_json(k));
        }
        out.push_str("}, \"children\": [");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            c.json_into(out);
        }
        out.push_str("]}");
    }
}

/// Render nanoseconds human-readably (shared with the bench harness style).
fn fmt_ns(ns: u128) -> String {
    crate::bench::format_ns(ns as f64)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// Per-thread telemetry state: the open-span stack and an optional capture
// buffer for finished root spans (the Collector).
struct ThreadState {
    stack: Vec<SpanNode>,
    capture: Option<Vec<SpanNode>>,
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState {
        stack: Vec::new(),
        capture: None,
    });
}

fn listening() -> bool {
    verbosity() != Verbosity::Off
        || trace_enabled()
        || STATE.with(|s| s.borrow().capture.is_some())
}

/// RAII guard for one span. Create via [`span!`] (or [`SpanGuard::enter`]);
/// the span closes when the guard drops.
pub struct SpanGuard {
    start: Option<Instant>,
}

impl SpanGuard {
    /// Open a span at [`Level::Info`].
    pub fn enter(name: impl Into<String>, detail: String) -> SpanGuard {
        SpanGuard::enter_level(Level::Info, name, detail)
    }

    /// Open a span at an explicit level. A no-op guard is returned when
    /// nobody is listening (or the level is filtered out).
    pub fn enter_level(level: Level, name: impl Into<String>, detail: String) -> SpanGuard {
        let keep = match level {
            Level::Info => listening(),
            Level::Debug => {
                verbosity() >= Verbosity::Debug
                    || STATE.with(|s| s.borrow().capture.is_some())
            }
        };
        if !keep {
            return SpanGuard { start: None };
        }
        STATE.with(|s| {
            s.borrow_mut().stack.push(SpanNode {
                name: name.into(),
                detail,
                ..SpanNode::default()
            })
        });
        SpanGuard {
            start: Some(Instant::now()),
        }
    }

    /// Is this guard actually recording?
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos();
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            let Some(mut node) = st.stack.pop() else { return };
            node.elapsed_ns = elapsed;
            if let Some(parent) = st.stack.last_mut() {
                parent.children.push(node);
            } else {
                finish_root(&mut st, node);
            }
        });
    }
}

/// Attach (or bump) a counter on the innermost open span. No-op outside an
/// active span.
pub fn record(key: &str, value: i64) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        if let Some(top) = st.stack.last_mut() {
            if let Some(entry) = top.counters.iter_mut().find(|(k, _)| k == key) {
                entry.1 += value;
            } else {
                top.counters.push((key.to_string(), value));
            }
        }
    });
}

/// Append a fully-measured leaf child to the innermost open span — for
/// metrics whose time is accumulated across many disjoint slices (per-rule
/// chase totals) rather than scoped by one guard.
pub fn annotate_child(
    name: &str,
    detail: &str,
    elapsed_ns: u128,
    counters: Vec<(String, i64)>,
) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        if let Some(top) = st.stack.last_mut() {
            top.children.push(SpanNode {
                name: name.to_string(),
                detail: detail.to_string(),
                elapsed_ns,
                counters,
                children: Vec::new(),
            });
        }
    });
}

fn finish_root(st: &mut ThreadState, root: SpanNode) {
    match verbosity() {
        Verbosity::Summary => {
            println!(
                "[kgm] {}{} {} ({} spans)",
                root.name,
                if root.detail.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", root.detail)
                },
                fmt_ns(root.elapsed_ns),
                root.span_count()
            );
        }
        Verbosity::Span | Verbosity::Debug => print!("{}", root.render_tree()),
        Verbosity::Off => {}
    }
    if trace_enabled() {
        write_trace(&root);
    }
    if let Some(buf) = st.capture.as_mut() {
        buf.push(root);
    }
}

/// Run `f` inside a span and return `(result, elapsed_ms)` — the one code
/// path for "time this phase and keep the number".
pub fn time<R>(name: &str, detail: String, f: impl FnOnce() -> R) -> (R, f64) {
    let guard = SpanGuard::enter(name, detail);
    let t = Instant::now();
    let r = f();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    drop(guard);
    (r, ms)
}

/// Open a span: `span!("chase.stratum")` or `span!("chase.stratum", "{s}")`.
/// Bind the returned guard (`let _g = span!(..)`) — dropping it closes the
/// span.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::telemetry::SpanGuard::enter($name, String::new())
    };
    ($name:expr, $($arg:tt)+) => {
        $crate::telemetry::SpanGuard::enter($name, format!($($arg)+))
    };
}

/// Open a [`Level::Debug`] span (kept only under `KGM_LOG=debug` or a
/// collector).
#[macro_export]
macro_rules! span_debug {
    ($name:expr) => {
        $crate::telemetry::SpanGuard::enter_level(
            $crate::telemetry::Level::Debug, $name, String::new())
    };
    ($name:expr, $($arg:tt)+) => {
        $crate::telemetry::SpanGuard::enter_level(
            $crate::telemetry::Level::Debug, $name, format!($($arg)+))
    };
}

// ---------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------

/// Captures every root span finished on the current thread between
/// [`Collector::install`] and [`Collector::finish`]. Nesting is not
/// supported: installing replaces any previous capture buffer.
pub struct Collector {
    _private: (),
}

impl Collector {
    /// Start capturing root spans on this thread.
    pub fn install() -> Collector {
        STATE.with(|s| s.borrow_mut().capture = Some(Vec::new()));
        Collector { _private: () }
    }

    /// Stop capturing and return the finished root spans in order.
    pub fn finish(self) -> Vec<SpanNode> {
        STATE.with(|s| s.borrow_mut().capture.take().unwrap_or_default())
    }
}

// ---------------------------------------------------------------------
// JSONL trace sink
// ---------------------------------------------------------------------

/// The trace directory: `KGM_TRACE_DIR` or `target/kgm-trace` (cwd-relative).
pub fn trace_dir() -> PathBuf {
    std::env::var_os("KGM_TRACE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("kgm-trace"))
}

/// Monotonic per-process counter for trace file names. Starts at 0 and
/// only moves forward, so even if the sink were re-initialized the names
/// keep advancing.
static TRACE_SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Pick a run-unique trace file path in `dir`: `trace-<pid>-<n>.jsonl` for
/// the first monotonic counter value `n` whose file does not already
/// exist. Pids recycle, so a bare `trace-<pid>.jsonl` could silently
/// append to a *previous* process's trace; probing the counter forward
/// guarantees back-to-back (and concurrent same-pid-namespace) runs each
/// get a fresh file.
pub fn unique_trace_path(dir: &std::path::Path, pid: u32) -> PathBuf {
    loop {
        let n = TRACE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = dir.join(format!("trace-{pid}-{n}.jsonl"));
        if !path.exists() {
            return path;
        }
        // Name taken (leftover from a recycled pid): advance and retry. The
        // counter is u32-bounded, which no real directory approaches.
    }
}

/// The trace file path this process will write to (`trace-<pid>-<n>.jsonl`),
/// chosen once per process on first use.
pub fn trace_path() -> PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| unique_trace_path(&trace_dir(), std::process::id()))
        .clone()
}

fn write_trace(root: &SpanNode) {
    static FILE: OnceLock<Option<Mutex<std::fs::File>>> = OnceLock::new();
    let file = FILE.get_or_init(|| {
        let dir = trace_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return None;
        }
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(trace_path())
            .ok()
            .map(Mutex::new)
    });
    let Some(file) = file else { return };
    // One line per span, depth-first, with a slash-joined path for grep-able
    // context (`chase.run/chase.stratum`).
    let mut lines = String::new();
    fn walk(n: &SpanNode, path: &str, out: &mut String) {
        let here = if path.is_empty() {
            n.name.clone()
        } else {
            format!("{path}/{}", n.name)
        };
        let _ = write!(
            out,
            "{{\"path\": \"{}\", \"detail\": \"{}\", \"elapsed_ns\": {}, \"counters\": {{",
            escape_json(&here),
            escape_json(&n.detail),
            n.elapsed_ns
        );
        for (i, (k, v)) in n.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {v}", escape_json(k));
        }
        out.push_str("}}\n");
        for c in &n.children {
            walk(c, &here, out);
        }
    }
    walk(root, "", &mut lines);
    let mut f = file.lock();
    let _ = f.write_all(lines.as_bytes());
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

/// A log₂-bucketed histogram of non-negative integer observations: bucket
/// `i` holds values whose bit length is `i` (bucket 0 ⇔ value 0). Covers
/// the full `u64` range in 65 buckets at O(1) record cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize; // 0 for v == 0
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound (inclusive) of the smallest bucket containing the given
    /// quantile — a log-scale percentile estimate.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }

    /// `(bucket_upper_bound, count)` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { (1u64 << i.min(63)) - 1 }, c))
            .collect()
    }
}

#[derive(Default)]
struct MetricsInner {
    counters: BTreeMap<String, i64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

fn metrics() -> &'static Mutex<MetricsInner> {
    static M: OnceLock<Mutex<MetricsInner>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(MetricsInner::default()))
}

/// Add `delta` to the named counter (creating it at 0).
pub fn counter_add(name: &str, delta: i64) {
    let mut m = metrics().lock();
    *m.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Set the named gauge.
pub fn gauge_set(name: &str, value: f64) {
    let mut m = metrics().lock();
    m.gauges.insert(name.to_string(), value);
}

/// Record one observation into the named log-scale histogram.
pub fn histogram_record(name: &str, value: u64) {
    let mut m = metrics().lock();
    m.histograms.entry(name.to_string()).or_default().record(value);
}

/// A point-in-time copy of the metrics registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → accumulated value.
    pub counters: BTreeMap<String, i64>,
    /// Gauge name → last value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → histogram.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Serialize as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {v}", escape_json(k));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {v:?}", escape_json(k));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"mean\": {:.2}, \"max\": {}, \"p50\": {}, \"p95\": {}}}",
                escape_json(k),
                h.count(),
                h.mean(),
                h.max(),
                h.quantile_bound(0.50),
                h.quantile_bound(0.95),
            );
        }
        out.push_str("}}");
        out
    }
}

/// Copy the current metrics registry.
pub fn snapshot() -> MetricsSnapshot {
    let m = metrics().lock();
    MetricsSnapshot {
        counters: m.counters.clone(),
        gauges: m.gauges.clone(),
        histograms: m.histograms.clone(),
    }
}

/// Clear every counter, gauge and histogram (tests, per-experiment reports).
pub fn reset_metrics() {
    let mut m = metrics().lock();
    m.counters.clear();
    m.gauges.clear();
    m.histograms.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate as kgm_runtime; // let the exported macros resolve `$crate` paths

    #[test]
    fn collector_captures_nested_spans_with_counters() {
        let c = Collector::install();
        {
            let _root = kgm_runtime::span!("outer", "detail {}", 7);
            record("hits", 2);
            record("hits", 3);
            {
                let _child = kgm_runtime::span!("inner");
                record("facts", 10);
            }
            annotate_child("leaf", "r0", 1_500, vec![("evals".into(), 4)]);
        }
        let roots = c.finish();
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.name, "outer");
        assert_eq!(root.detail, "detail 7");
        assert_eq!(root.counter("hits"), Some(5), "records accumulate");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "inner");
        assert_eq!(root.children[0].counter("facts"), Some(10));
        assert_eq!(root.children[1].name, "leaf");
        assert_eq!(root.children[1].elapsed_ns, 1_500);
        assert_eq!(root.span_count(), 3);
        assert!(root.find("inner").is_some());
        assert!(root.find("absent").is_none());
    }

    #[test]
    fn spans_are_noops_when_nobody_listens() {
        // No collector, KGM_LOG unset in tests → guard must be inactive.
        if verbosity() == Verbosity::Off {
            let g = kgm_runtime::span!("quiet");
            assert!(!g.is_active());
        }
    }

    #[test]
    fn debug_spans_are_captured_by_collectors() {
        let c = Collector::install();
        {
            let _root = kgm_runtime::span!("r");
            let _d = kgm_runtime::span_debug!("fine", "{}", 1);
        }
        let roots = c.finish();
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "fine");
    }

    #[test]
    fn time_returns_elapsed_even_when_off() {
        let (v, ms) = time("work", String::new(), || {
            std::hint::black_box((0..10_000u64).sum::<u64>())
        });
        assert_eq!(v, 49_995_000);
        assert!(ms >= 0.0);
    }

    #[test]
    fn span_json_and_tree_render() {
        let node = SpanNode {
            name: "a".into(),
            detail: "d\"x".into(),
            elapsed_ns: 2_000_000,
            counters: vec![("k".into(), 3)],
            children: vec![SpanNode {
                name: "b".into(),
                elapsed_ns: 1_000,
                ..SpanNode::default()
            }],
        };
        let json = node.to_json();
        assert!(json.contains("\"name\": \"a\""), "{json}");
        assert!(json.contains("d\\\"x"), "{json}");
        assert!(json.contains("\"k\": 3"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let tree = node.render_tree();
        assert!(tree.contains("▸ a [d\"x]"), "{tree}");
        assert!(tree.contains("k=3"), "{tree}");
        assert!(tree.contains("  ▸ b"), "{tree}");
    }

    #[test]
    fn metrics_registry_counts_gauges_histograms() {
        reset_metrics();
        counter_add("t.c", 4);
        counter_add("t.c", 1);
        gauge_set("t.g", 2.5);
        for v in [0u64, 1, 1, 7, 1000] {
            histogram_record("t.h", v);
        }
        let s = snapshot();
        assert_eq!(s.counters["t.c"], 5);
        assert_eq!(s.gauges["t.g"], 2.5);
        let h = &s.histograms["t.h"];
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.8).abs() < 1e-9);
        // p50 of [0,1,1,7,1000] lands in the bit-length-1 bucket (bound 1).
        assert_eq!(h.quantile_bound(0.5), 1);
        assert!(h.quantile_bound(0.99) >= 1000);
        let json = s.to_json();
        assert!(json.contains("\"t.c\": 5"), "{json}");
        assert!(json.contains("\"count\": 5"), "{json}");
        reset_metrics();
        assert!(snapshot().counters.is_empty());
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 8, 1 << 20] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        // 0 → bucket 0; 1 → bound 1; 2,3 → bound 3; 4 → bound 7; 8 → 15;
        // 2^20 → bound 2^21-1.
        let bounds: Vec<u64> = buckets.iter().map(|(b, _)| *b).collect();
        assert_eq!(bounds, vec![0, 1, 3, 7, 15, (1 << 21) - 1]);
        assert_eq!(buckets[2].1, 2, "2 and 3 share a bucket");
    }

    #[test]
    fn trace_paths_are_run_unique_even_when_pids_recycle() {
        let dir = std::env::temp_dir().join(format!(
            "kgm-trace-test-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        // Two picks in one process never collide (monotonic counter).
        let a = unique_trace_path(&dir, 4242);
        let b = unique_trace_path(&dir, 4242);
        assert_ne!(a, b);
        let name = a.file_name().unwrap().to_str().unwrap();
        assert!(
            name.starts_with("trace-4242-") && name.ends_with(".jsonl"),
            "{name}"
        );
        // A leftover file from a previous process with a recycled pid must
        // be skipped, not appended to: pre-create the next candidate names
        // and check the picked path is fresh.
        let seq_floor: u32 = b
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .trim_start_matches("trace-4242-")
            .trim_end_matches(".jsonl")
            .parse()
            .unwrap();
        for n in seq_floor + 1..seq_floor + 4 {
            std::fs::write(dir.join(format!("trace-4242-{n}.jsonl")), b"stale").unwrap();
        }
        let c = unique_trace_path(&dir, 4242);
        assert!(!c.exists(), "picked path must not be a stale file");
        assert_ne!(c, a);
        assert_ne!(c, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verbosity_parses_kgm_log_values() {
        assert_eq!(Verbosity::parse("off"), Verbosity::Off);
        assert_eq!(Verbosity::parse("Summary"), Verbosity::Summary);
        assert_eq!(Verbosity::parse("span"), Verbosity::Span);
        assert_eq!(Verbosity::parse("debug"), Verbosity::Debug);
        assert_eq!(Verbosity::parse("nonsense"), Verbosity::Off);
        assert!(Verbosity::Debug > Verbosity::Span);
    }
}
