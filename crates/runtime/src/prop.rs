//! A minimal property-testing harness: seeded case generation, shrinking on
//! failure, and `prop_assert!`-style macros.
//!
//! The workspace's integration suites were written against `proptest`; this
//! module keeps the testing *discipline* (random structured inputs, many
//! cases, counterexample minimization, reproducible seeds) without the
//! external crate. The moving parts:
//!
//! - a test is a closure `Fn(&T) -> CaseResult` over inputs produced by a
//!   generator closure `Fn(&mut Rng) -> T`;
//! - each case draws from an [`Rng`] seeded by `splitmix(run_seed, case)`,
//!   so any failure is reproducible from the numbers in the panic message
//!   (`KGM_PROP_SEED` re-runs a whole suite under a chosen seed and
//!   `KGM_PROP_CASES` scales the case count);
//! - on failure, a caller-supplied shrinker proposes smaller inputs and the
//!   harness greedily descends to a local minimum before reporting;
//! - [`prop_assume!`] rejects uninteresting cases, which are regenerated
//!   (bounded) rather than counted as passes.

use crate::rng::{split_mix64, Rng};
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// The case does not satisfy a precondition (`prop_assume!`); the
    /// harness regenerates instead of failing.
    Reject(String),
    /// The property is false for this input.
    Fail(String),
}

impl CaseError {
    /// Build a failure.
    pub fn fail(message: impl Into<String>) -> CaseError {
        CaseError::Fail(message.into())
    }

    /// Build a rejection.
    pub fn reject(message: impl Into<String>) -> CaseError {
        CaseError::Reject(message.into())
    }
}

/// Result of one property invocation.
pub type CaseResult = std::result::Result<(), CaseError>;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases that must pass.
    pub cases: usize,
    /// Seed of the whole run (per-case seeds derive from it).
    pub seed: u64,
    /// Cap on shrink candidates tried after a failure.
    pub max_shrink_steps: usize,
    /// Cap on regenerations per case when `prop_assume!` rejects.
    pub max_rejects: usize,
}

const DEFAULT_SEED: u64 = 0x6b67_6d5f_7072_6f70; // "kgm_prop"

impl Default for Config {
    fn default() -> Self {
        let env_u64 = |k: &str| std::env::var(k).ok().and_then(|v| v.parse().ok());
        Config {
            cases: env_u64("KGM_PROP_CASES").map(|v: u64| v as usize).unwrap_or(64),
            seed: env_u64("KGM_PROP_SEED").unwrap_or(DEFAULT_SEED),
            max_shrink_steps: 400,
            max_rejects: 1_000,
        }
    }
}

impl Config {
    /// Default config with an explicit case count (still overridable by
    /// `KGM_PROP_CASES`, which always wins so CI can scale suites globally).
    pub fn with_cases(cases: usize) -> Config {
        let mut c = Config::default();
        if std::env::var("KGM_PROP_CASES").is_err() {
            c.cases = cases;
        }
        c
    }
}

/// Run `prop` on `cases` inputs drawn from `gen`, shrinking counterexamples
/// with `shrink`. Panics with a reproduction recipe on failure.
///
/// `shrink` proposes *simpler* candidates for a failing input (e.g. shorter
/// vectors); pass [`no_shrink`] when minimization is not useful.
pub fn check<T, G, S, P>(name: &str, config: &Config, gen: G, shrink: S, prop: P)
where
    T: Debug,
    G: Fn(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> CaseResult,
{
    let run_prop = |input: &T| -> CaseResult {
        match panic::catch_unwind(AssertUnwindSafe(|| prop(input))) {
            Ok(r) => r,
            Err(payload) => Err(CaseError::fail(format!(
                "panicked: {}",
                panic_message(&payload)
            ))),
        }
    };

    let mut rejects_total = 0usize;
    for case in 0..config.cases {
        let mut s = config.seed.wrapping_add(case as u64);
        let case_seed = split_mix64(&mut s);
        // Regenerate on prop_assume! rejection, from sub-seeds of the case.
        let mut attempt_seed = case_seed;
        let (input, failure) = loop {
            let mut rng = Rng::seed_from_u64(attempt_seed);
            let input = gen(&mut rng);
            match run_prop(&input) {
                Ok(()) => break (input, None),
                Err(CaseError::Fail(m)) => break (input, Some(m)),
                Err(CaseError::Reject(_)) => {
                    rejects_total += 1;
                    if rejects_total > config.max_rejects {
                        panic!(
                            "[prop] {name}: too many rejected cases ({}); \
                             loosen prop_assume! or tighten the generator",
                            rejects_total
                        );
                    }
                    attempt_seed = split_mix64(&mut attempt_seed);
                }
            }
        };
        let Some(message) = failure else { continue };

        // Greedy shrink: repeatedly move to the first failing candidate.
        // Keep the original (pre-shrink) input around: the minimized case is
        // what a human debugs, but the original is what the seed reproduces,
        // so the report must carry both to be copy-pasteable from CI logs.
        let original = format!("{input:?}");
        let original_msg = message.clone();
        let mut minimal = input;
        let mut minimal_msg = message;
        let mut steps = 0usize;
        'outer: while steps < config.max_shrink_steps {
            for candidate in shrink(&minimal) {
                steps += 1;
                if steps >= config.max_shrink_steps {
                    break 'outer;
                }
                if let Err(CaseError::Fail(m)) = run_prop(&candidate) {
                    minimal = candidate;
                    minimal_msg = m;
                    continue 'outer;
                }
            }
            break; // no candidate fails: local minimum reached
        }
        let minimal = format!("{minimal:?}");
        let original_part = if minimal == original && minimal_msg == original_msg {
            String::new() // shrinking made no progress: one report is enough
        } else {
            format!("original input (seed {case_seed:#x}): {original}\n{original_msg}\n")
        };
        panic!(
            "[prop] {name}: case {case}/{} FAILED\n\
             seed: {} (case seed {case_seed:#x}, {steps} shrink steps)\n\
             minimal input: {minimal}\n\
             {minimal_msg}\n\
             {original_part}\
             reproduce with: KGM_PROP_SEED={} KGM_PROP_CASES={} cargo test",
            config.cases,
            config.seed,
            config.seed,
            case + 1
        );
    }
}

/// Shrinker that proposes nothing (disables minimization).
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Candidate simplifications of a vector: first half, second half, and each
/// single-element removal — the standard quickcheck-style schedule that
/// makes fast progress on long inputs and fine progress near the minimum.
pub fn shrink_vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.is_empty() {
        return out;
    }
    if v.len() > 1 {
        out.push(v[..v.len() / 2].to_vec());
        out.push(v[v.len() / 2..].to_vec());
    }
    for i in 0..v.len() {
        let mut w = v.to_vec();
        w.remove(i);
        out.push(w);
    }
    out
}

/// Candidate simplifications of a non-negative integer: 0, then halving.
pub fn shrink_usize(n: usize) -> Vec<usize> {
    if n == 0 {
        Vec::new()
    } else if n == 1 {
        vec![0]
    } else {
        vec![0, n / 2, n - 1]
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Fail the property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the property unless `left == right`, showing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
}

/// Fail the property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
}

/// Reject the case (regenerate) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> Config {
        Config {
            cases: 64,
            seed: 1,
            max_shrink_steps: 400,
            max_rejects: 1_000,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0;
        check(
            "sum_commutes",
            &quiet_cfg(),
            |rng| (rng.gen_range(0i64..100), rng.gen_range(0i64..100)),
            no_shrink,
            |&(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
        seen += 1; // reaching here means no panic
        assert_eq!(seen, 1);
    }

    #[test]
    fn failure_reports_seed_and_shrinks() {
        let err = panic::catch_unwind(|| {
            check(
                "vec_never_long",
                &quiet_cfg(),
                |rng| {
                    let n = rng.gen_range(0usize..20);
                    (0..n).map(|_| rng.gen_range(0i64..5)).collect::<Vec<_>>()
                },
                |v| shrink_vec(v),
                |v| {
                    prop_assert!(v.len() < 3, "len = {}", v.len());
                    Ok(())
                },
            )
        })
        .unwrap_err();
        let msg = format!("{}", panic_message(&err));
        assert!(msg.contains("FAILED"), "{msg}");
        assert!(msg.contains("KGM_PROP_SEED="), "{msg}");
        // The repro line pins the failing case index via KGM_PROP_CASES so
        // the whole line can be copy-pasted from a CI log.
        assert!(msg.contains("KGM_PROP_CASES="), "{msg}");
        // When shrinking changed the input, the original case and its seed
        // are reported alongside the minimized one.
        assert!(msg.contains("original input (seed 0x"), "{msg}");
        // Shrinking must land on the minimal counterexample length (3).
        assert!(msg.contains("minimal input"), "{msg}");
        let after = msg.split("minimal input: ").nth(1).unwrap();
        let line = after.lines().next().unwrap();
        let commas = line.matches(',').count();
        assert!(commas <= 2, "shrunk to 3 elements, got: {line}");
    }

    #[test]
    fn panics_inside_property_are_failures() {
        let err = panic::catch_unwind(|| {
            check(
                "panicky",
                &quiet_cfg(),
                |rng| rng.gen_range(0u32..10),
                no_shrink,
                |&v| {
                    assert!(v < 100, "impossible");
                    if v > 1_000 {
                        return Ok(());
                    }
                    panic!("inner boom {v}");
                },
            )
        })
        .unwrap_err();
        let msg = panic_message(&err);
        assert!(msg.contains("panicked: inner boom"), "{msg}");
    }

    #[test]
    fn assume_regenerates_instead_of_failing() {
        check(
            "only_even_inputs",
            &quiet_cfg(),
            |rng| rng.gen_range(0u64..1000),
            no_shrink,
            |&v| {
                prop_assume!(v % 2 == 0);
                prop_assert_eq!(v % 2, 0);
                Ok(())
            },
        );
    }

    #[test]
    fn unsatisfiable_assume_is_reported() {
        let err = panic::catch_unwind(|| {
            check(
                "never",
                &Config {
                    max_rejects: 20,
                    ..quiet_cfg()
                },
                |rng| rng.gen_range(0u64..10),
                no_shrink,
                |_| {
                    prop_assume!(false);
                    Ok(())
                },
            )
        })
        .unwrap_err();
        assert!(panic_message(&err).contains("too many rejected cases"));
    }

    #[test]
    fn same_seed_generates_same_cases() {
        let collect = || {
            let all = std::cell::RefCell::new(Vec::new());
            check(
                "collector",
                &quiet_cfg(),
                |rng| rng.gen_range(0u64..1_000_000),
                no_shrink,
                |&v| {
                    all.borrow_mut().push(v);
                    Ok(())
                },
            );
            all.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn shrink_helpers_propose_simpler_values() {
        assert!(shrink_vec(&[1, 2, 3, 4]).iter().all(|v| v.len() < 4));
        assert!(shrink_vec::<u8>(&[]).is_empty());
        assert_eq!(shrink_usize(0), Vec::<usize>::new());
        assert!(shrink_usize(10).contains(&5));
    }
}
