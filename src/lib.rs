//! # KGModel
//!
//! A model-independent design framework for Knowledge Graphs, reproducing
//! *“Model-Independent Design of Knowledge Graphs — Lessons Learnt From
//! Complex Financial Graphs”* (EDBT 2022).
//!
//! This facade crate re-exports every subsystem of the workspace:
//!
//! - [`common`] — OIDs, values, Skolem functors, hashing.
//! - [`pgstore`] — the property-graph database substrate and graph algorithms.
//! - [`relstore`] — the relational database substrate.
//! - [`triplestore`] — the triple-store substrate and RDF-S emission.
//! - [`vadalog`] — the Warded Datalog± reasoner.
//! - [`metalog`] — the MetaLog language and the MTV compiler to Vadalog.
//! - [`core`] — the KGModel framework itself: meta-model, super-model,
//!   dictionaries, GSL, SSST (Algorithm 1), intensional materialization
//!   (Algorithm 2).
//! - [`finance`] — the Bank-of-Italy-style Company KG: schema, synthetic
//!   registry generator, and the control / integrated-ownership / close-links
//!   intensional components with independent baselines.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use kgm_common as common;
pub use kgm_core as core;
pub use kgm_finance as finance;
pub use kgm_metalog as metalog;
pub use kgm_pgstore as pgstore;
pub use kgm_relstore as relstore;
pub use kgm_triplestore as triplestore;
pub use kgm_vadalog as vadalog;
