//! Property test: the quasi-inverse round trip of Section 6.
//!
//! Loading a random instance into the `I_SM_*` super-components and flushing
//! it back reproduces the instance exactly (node/edge multisets with labels
//! and properties) — *"any potential information loss is never caused by the
//! inversion"*.
//!
//! Runs under the in-workspace harness (`kgm_runtime::prop`): 64 seeded
//! cases per property, with the failing seed reported for reproduction.

use kgm_runtime::prop::{check, no_shrink, CaseResult, Config};
use kgm_runtime::rng::Rng;
use kgm_runtime::prop_assert_eq;
use kgmodel::common::Value;
use kgmodel::core::dictionary::Dictionary;
use kgmodel::core::instances::{flush_instance, load_instance};
use kgmodel::core::parse_gsl;
use kgmodel::pgstore::{NodeId, PropertyGraph};
use std::collections::BTreeMap;

fn schema_src() -> &'static str {
    r#"
    schema T {
      node Person { id pid: string; opt nick: string; }
      node Company { budget: float; }
      generalization Person -> Company;
      node Place { id placeId: string; }
      edge WORKS_AT: Person [0..N] -> [0..N] Company { since: int; }
      edge LOCATED: Company [0..N] -> [0..1] Place;
    }
    "#
}

/// Canonical multiset fingerprint of a graph: sorted node descriptors and
/// edge descriptors (labels + sorted properties).
fn fingerprint(g: &PropertyGraph) -> (Vec<String>, Vec<String>) {
    let node_desc = |n: NodeId| {
        let mut labels = g.node_labels(n);
        labels.sort();
        let mut props: Vec<(String, Value)> = g.node_props(n);
        props.sort_by(|a, b| a.0.cmp(&b.0));
        format!("{labels:?}|{props:?}")
    };
    let mut nodes: Vec<String> = g.nodes().map(node_desc).collect();
    nodes.sort();
    let mut edges: Vec<String> = g
        .edges()
        .map(|e| {
            let (f, t) = g.edge_endpoints(e);
            let mut props: Vec<(String, Value)> = g.edge_props(e);
            props.sort_by(|a, b| a.0.cmp(&b.0));
            format!(
                "{}|{}→{}|{props:?}",
                g.edge_label(e),
                node_desc(f),
                node_desc(t)
            )
        })
        .collect();
    edges.sort();
    (nodes, edges)
}

#[derive(Debug, Clone)]
struct RandomInstance {
    people: Vec<(String, Option<String>)>,
    companies: Vec<(String, f64)>,
    places: Vec<String>,
    works_at: Vec<(usize, usize, i64)>,
    located: Vec<(usize, usize)>,
}

/// A random identifier shaped like the old `p[a-z]{2}[0-9]{2}` regexes.
fn gen_word(rng: &mut Rng, prefix: char, alphas: usize, digits: usize) -> String {
    let mut s = String::new();
    s.push(prefix);
    for _ in 0..alphas {
        s.push((b'a' + rng.gen_range(0u8..26)) as char);
    }
    for _ in 0..digits {
        s.push((b'0' + rng.gen_range(0u8..10)) as char);
    }
    s
}

fn gen_instance(rng: &mut Rng) -> RandomInstance {
    let np = rng.gen_range(0usize..5);
    let people = (0..np)
        .map(|_| {
            let pid = gen_word(rng, 'p', 2, 2);
            let nick = if rng.gen_bool(0.5) {
                Some(gen_word(rng, 'n', 3, 0))
            } else {
                None
            };
            (pid, nick)
        })
        .collect();
    let nc = rng.gen_range(1usize..5);
    let companies = (0..nc)
        .map(|_| (gen_word(rng, 'c', 2, 2), rng.gen_range(0.0f64..100.0)))
        .collect();
    let nl = rng.gen_range(0usize..3);
    let places = (0..nl).map(|_| gen_word(rng, 'l', 3, 0)).collect();
    let nw = rng.gen_range(0usize..6);
    let works_at = (0..nw)
        .map(|_| {
            (
                rng.gen_range(0usize..8),
                rng.gen_range(0usize..8),
                rng.gen_range(0i64..3000),
            )
        })
        .collect();
    let nloc = rng.gen_range(0usize..4);
    let located = (0..nloc)
        .map(|_| (rng.gen_range(0usize..8), rng.gen_range(0usize..8)))
        .collect();
    RandomInstance {
        people,
        companies,
        places,
        works_at,
        located,
    }
}

fn build(inst: &RandomInstance) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut persons: Vec<NodeId> = Vec::new();
    // Distinct pids per node (suffix with index to avoid collisions).
    for (i, (pid, nick)) in inst.people.iter().enumerate() {
        let mut props = vec![("pid".to_string(), Value::str(format!("{pid}{i}")))];
        if let Some(n) = nick {
            props.push(("nick".to_string(), Value::str(n)));
        }
        persons.push(g.add_node(["Person"], props).unwrap());
    }
    let mut companies: Vec<NodeId> = Vec::new();
    for (i, (pid, budget)) in inst.companies.iter().enumerate() {
        companies.push(
            g.add_node(
                ["Company", "Person"],
                vec![
                    ("pid".to_string(), Value::str(format!("C{pid}{i}"))),
                    ("budget".to_string(), Value::Float(*budget)),
                ],
            )
            .unwrap(),
        );
    }
    let mut places: Vec<NodeId> = Vec::new();
    for (i, pl) in inst.places.iter().enumerate() {
        places.push(
            g.add_node(
                ["Place"],
                vec![("placeId".to_string(), Value::str(format!("{pl}{i}")))],
            )
            .unwrap(),
        );
    }
    let all_persons: Vec<NodeId> = persons.iter().chain(companies.iter()).copied().collect();
    for &(p, c, since) in &inst.works_at {
        if all_persons.is_empty() || companies.is_empty() {
            continue;
        }
        let f = all_persons[p % all_persons.len()];
        let t = companies[c % companies.len()];
        g.add_edge(f, t, "WORKS_AT", vec![("since".to_string(), Value::Int(since))])
            .unwrap();
    }
    for &(c, l) in &inst.located {
        if companies.is_empty() || places.is_empty() {
            continue;
        }
        g.add_edge(
            companies[c % companies.len()],
            places[l % places.len()],
            "LOCATED",
            vec![],
        )
        .unwrap();
    }
    g
}

#[test]
fn load_then_flush_is_identity() {
    check(
        "load_then_flush_is_identity",
        &Config::with_cases(64),
        gen_instance,
        no_shrink,
        |inst| -> CaseResult {
            let schema = parse_gsl(schema_src()).unwrap();
            let data = build(inst);
            let mut dict = Dictionary::new();
            dict.encode(&schema, 1).unwrap();
            load_instance(&mut dict, &schema, 1, 55, &data).unwrap();
            let back = flush_instance(&dict, &schema, 55).unwrap();
            prop_assert_eq!(fingerprint(&back), fingerprint(&data));
            Ok(())
        },
    );
}

#[test]
fn double_round_trip_is_stable() {
    check(
        "double_round_trip_is_stable",
        &Config::with_cases(64),
        gen_instance,
        no_shrink,
        |inst| -> CaseResult {
            let schema = parse_gsl(schema_src()).unwrap();
            let data = build(inst);
            let mut dict = Dictionary::new();
            dict.encode(&schema, 1).unwrap();
            load_instance(&mut dict, &schema, 1, 55, &data).unwrap();
            let once = flush_instance(&dict, &schema, 55).unwrap();
            let mut dict2 = Dictionary::new();
            dict2.encode(&schema, 1).unwrap();
            load_instance(&mut dict2, &schema, 1, 56, &once).unwrap();
            let twice = flush_instance(&dict2, &schema, 56).unwrap();
            prop_assert_eq!(fingerprint(&twice), fingerprint(&once));
            Ok(())
        },
    );
}

#[test]
fn counts_survive_a_bigger_instance() {
    let schema = parse_gsl(schema_src()).unwrap();
    let mut g = PropertyGraph::new();
    let mut map: BTreeMap<usize, NodeId> = BTreeMap::new();
    for i in 0..200 {
        map.insert(
            i,
            g.add_node(
                ["Company", "Person"],
                vec![
                    ("pid".to_string(), Value::str(format!("c{i}"))),
                    ("budget".to_string(), Value::Float(i as f64)),
                ],
            )
            .unwrap(),
        );
    }
    for i in 0..199 {
        g.add_edge(
            map[&i],
            map[&(i + 1)],
            "WORKS_AT",
            vec![("since".to_string(), Value::Int(i as i64))],
        )
        .unwrap();
    }
    let mut dict = Dictionary::new();
    dict.encode(&schema, 1).unwrap();
    let (stats, _) = load_instance(&mut dict, &schema, 1, 9, &g).unwrap();
    assert_eq!(stats.nodes, 200);
    assert_eq!(stats.edges, 199);
    let back = flush_instance(&dict, &schema, 9).unwrap();
    assert_eq!(fingerprint(&back), fingerprint(&g));
}
