//! Property test: the quasi-inverse round trip of Section 6.
//!
//! Loading a random instance into the `I_SM_*` super-components and flushing
//! it back reproduces the instance exactly (node/edge multisets with labels
//! and properties) — *"any potential information loss is never caused by the
//! inversion"*.

use kgmodel::common::Value;
use kgmodel::core::dictionary::Dictionary;
use kgmodel::core::instances::{flush_instance, load_instance};
use kgmodel::core::parse_gsl;
use kgmodel::pgstore::{NodeId, PropertyGraph};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn schema_src() -> &'static str {
    r#"
    schema T {
      node Person { id pid: string; opt nick: string; }
      node Company { budget: float; }
      generalization Person -> Company;
      node Place { id placeId: string; }
      edge WORKS_AT: Person [0..N] -> [0..N] Company { since: int; }
      edge LOCATED: Company [0..N] -> [0..1] Place;
    }
    "#
}

/// Canonical multiset fingerprint of a graph: sorted node descriptors and
/// edge descriptors (labels + sorted properties).
fn fingerprint(g: &PropertyGraph) -> (Vec<String>, Vec<String>) {
    let node_desc = |n: NodeId| {
        let mut labels = g.node_labels(n);
        labels.sort();
        let mut props: Vec<(String, Value)> = g.node_props(n);
        props.sort_by(|a, b| a.0.cmp(&b.0));
        format!("{labels:?}|{props:?}")
    };
    let mut nodes: Vec<String> = g.nodes().map(node_desc).collect();
    nodes.sort();
    let mut edges: Vec<String> = g
        .edges()
        .map(|e| {
            let (f, t) = g.edge_endpoints(e);
            let mut props: Vec<(String, Value)> = g.edge_props(e);
            props.sort_by(|a, b| a.0.cmp(&b.0));
            format!(
                "{}|{}→{}|{props:?}",
                g.edge_label(e),
                node_desc(f),
                node_desc(t)
            )
        })
        .collect();
    edges.sort();
    (nodes, edges)
}

#[derive(Debug, Clone)]
struct RandomInstance {
    people: Vec<(String, Option<String>)>,
    companies: Vec<(String, f64)>,
    places: Vec<String>,
    works_at: Vec<(usize, usize, i64)>,
    located: Vec<(usize, usize)>,
}

fn arb_instance() -> impl Strategy<Value = RandomInstance> {
    (
        proptest::collection::vec(("p[a-z]{2}[0-9]{2}", proptest::option::of("n[a-z]{3}")), 0..5),
        proptest::collection::vec(("c[a-z]{2}[0-9]{2}", 0.0f64..100.0), 1..5),
        proptest::collection::vec("l[a-z]{3}", 0..3),
        proptest::collection::vec((0usize..8, 0usize..8, 0i64..3000), 0..6),
        proptest::collection::vec((0usize..8, 0usize..8), 0..4),
    )
        .prop_map(|(people, companies, places, works_at, located)| RandomInstance {
            people,
            companies,
            places,
            works_at,
            located,
        })
}

fn build(inst: &RandomInstance) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut persons: Vec<NodeId> = Vec::new();
    // Distinct pids per node (suffix with index to avoid collisions).
    for (i, (pid, nick)) in inst.people.iter().enumerate() {
        let mut props = vec![("pid".to_string(), Value::str(format!("{pid}{i}")))];
        if let Some(n) = nick {
            props.push(("nick".to_string(), Value::str(n)));
        }
        persons.push(g.add_node(["Person"], props).unwrap());
    }
    let mut companies: Vec<NodeId> = Vec::new();
    for (i, (pid, budget)) in inst.companies.iter().enumerate() {
        companies.push(
            g.add_node(
                ["Company", "Person"],
                vec![
                    ("pid".to_string(), Value::str(format!("C{pid}{i}"))),
                    ("budget".to_string(), Value::Float(*budget)),
                ],
            )
            .unwrap(),
        );
    }
    let mut places: Vec<NodeId> = Vec::new();
    for (i, pl) in inst.places.iter().enumerate() {
        places.push(
            g.add_node(
                ["Place"],
                vec![("placeId".to_string(), Value::str(format!("{pl}{i}")))],
            )
            .unwrap(),
        );
    }
    let all_persons: Vec<NodeId> = persons.iter().chain(companies.iter()).copied().collect();
    for &(p, c, since) in &inst.works_at {
        if all_persons.is_empty() || companies.is_empty() {
            continue;
        }
        let f = all_persons[p % all_persons.len()];
        let t = companies[c % companies.len()];
        g.add_edge(f, t, "WORKS_AT", vec![("since".to_string(), Value::Int(since))])
            .unwrap();
    }
    for &(c, l) in &inst.located {
        if companies.is_empty() || places.is_empty() {
            continue;
        }
        g.add_edge(
            companies[c % companies.len()],
            places[l % places.len()],
            "LOCATED",
            vec![],
        )
        .unwrap();
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn load_then_flush_is_identity(inst in arb_instance()) {
        let schema = parse_gsl(schema_src()).unwrap();
        let data = build(&inst);
        let mut dict = Dictionary::new();
        dict.encode(&schema, 1).unwrap();
        load_instance(&mut dict, &schema, 1, 55, &data).unwrap();
        let back = flush_instance(&dict, &schema, 55).unwrap();
        prop_assert_eq!(fingerprint(&back), fingerprint(&data));
    }

    #[test]
    fn double_round_trip_is_stable(inst in arb_instance()) {
        let schema = parse_gsl(schema_src()).unwrap();
        let data = build(&inst);
        let mut dict = Dictionary::new();
        dict.encode(&schema, 1).unwrap();
        load_instance(&mut dict, &schema, 1, 55, &data).unwrap();
        let once = flush_instance(&dict, &schema, 55).unwrap();
        let mut dict2 = Dictionary::new();
        dict2.encode(&schema, 1).unwrap();
        load_instance(&mut dict2, &schema, 1, 56, &once).unwrap();
        let twice = flush_instance(&dict2, &schema, 56).unwrap();
        prop_assert_eq!(fingerprint(&twice), fingerprint(&once));
    }
}

#[test]
fn counts_survive_a_bigger_instance() {
    let schema = parse_gsl(schema_src()).unwrap();
    let mut g = PropertyGraph::new();
    let mut map: BTreeMap<usize, NodeId> = BTreeMap::new();
    for i in 0..200 {
        map.insert(
            i,
            g.add_node(
                ["Company", "Person"],
                vec![
                    ("pid".to_string(), Value::str(format!("c{i}"))),
                    ("budget".to_string(), Value::Float(i as f64)),
                ],
            )
            .unwrap(),
        );
    }
    for i in 0..199 {
        g.add_edge(
            map[&i],
            map[&(i + 1)],
            "WORKS_AT",
            vec![("since".to_string(), Value::Int(i as i64))],
        )
        .unwrap();
    }
    let mut dict = Dictionary::new();
    dict.encode(&schema, 1).unwrap();
    let (stats, _) = load_instance(&mut dict, &schema, 1, 9, &g).unwrap();
    assert_eq!(stats.nodes, 200);
    assert_eq!(stats.edges, 199);
    let back = flush_instance(&dict, &schema, 9).unwrap();
    assert_eq!(fingerprint(&back), fingerprint(&g));
}
