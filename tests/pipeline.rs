//! End-to-end integration: GSL → SSST → enforcement → instance →
//! Algorithm 2 → baseline agreement — the whole KGModel journey on one
//! synthetic financial registry.

use kgmodel::common::Value;
use kgmodel::core::enforce;
use kgmodel::core::intensional::{materialize, MaterializationMode};
use kgmodel::core::sst::{
    translate_to_pg, translate_to_relational, PgGeneralizationStrategy,
    RelGeneralizationStrategy,
};
use kgmodel::finance::control::{baseline_control, CONTROL_METALOG};
use kgmodel::finance::generator::{generate_shareholding, ShareholdingConfig};
use kgmodel::finance::schema::{company_kg_schema, simple_ownership_schema};

#[test]
fn full_pipeline_control_matches_baseline() {
    let schema = simple_ownership_schema().unwrap();

    // SSST → PG model; the schema validates the generated instance.
    let pg = translate_to_pg(&schema, PgGeneralizationStrategy::MultiLabel).unwrap();
    let cfg = ShareholdingConfig {
        nodes: 600,
        person_fraction: 0.3,
        cross_ownership: 0.02,
        seed: 7,
        ..Default::default()
    };
    let mut data = generate_shareholding(&cfg).unwrap();
    pg.check_instance(&data).unwrap();

    // Algorithm 2 with the Example 4.1 MetaLog program.
    let stats = materialize(
        &mut data,
        &schema,
        CONTROL_METALOG,
        MaterializationMode::SinglePass,
    )
    .unwrap();
    assert!(stats.new_edges > 0);

    // The materialized edges must agree with the independent baseline.
    let baseline = baseline_control(&data);
    let materialized: std::collections::BTreeSet<(u64, u64)> = data
        .edges_with_label("CONTROLS")
        .into_iter()
        .filter_map(|e| {
            let (f, t) = data.edge_endpoints(e);
            if f == t {
                return None;
            }
            Some((data.node_oid(f).payload(), data.node_oid(t).payload()))
        })
        .collect();
    let baseline: std::collections::BTreeSet<(u64, u64)> = baseline.into_iter().collect();
    assert_eq!(materialized, baseline);
}

#[test]
fn company_kg_deploys_to_all_three_targets() {
    let schema = company_kg_schema().unwrap();

    // PG target: constraints enforceable on a real store.
    let pg = translate_to_pg(&schema, PgGeneralizationStrategy::MultiLabel).unwrap();
    let mut store = kgmodel::pgstore::PropertyGraph::new();
    let n = pg.enforce(&mut store).unwrap();
    assert!(n >= 1, "at least the fiscalCode uniqueness constraint");
    let commands = enforce::pg_constraint_commands(&pg);
    assert!(commands.iter().any(|c| c.contains("fiscalCode")));

    // Relational target: catalog + DDL.
    let rel =
        translate_to_relational(&schema, RelGeneralizationStrategy::ForeignKeyPerChild).unwrap();
    let catalog = rel.create_catalog().unwrap();
    assert!(catalog.table_names().contains(&"business".to_string()));
    let ddl = rel.ddl().unwrap();
    assert!(ddl.contains("CREATE TABLE \"physical_person\""));

    // RDF target.
    let doc = enforce::rdfs_document(&schema, "http://bankit.example/#");
    assert!(doc.contains("subClassOf"));
}

#[test]
fn relational_instance_respects_generated_constraints() {
    // Deploy the simple schema relationally and load a few rows through the
    // constraint-checked catalog.
    let schema = simple_ownership_schema().unwrap();
    let rel =
        translate_to_relational(&schema, RelGeneralizationStrategy::ForeignKeyPerChild).unwrap();
    let mut catalog = rel.create_catalog().unwrap();
    catalog
        .insert_named("person", &[("pid", Value::str("p1"))])
        .unwrap();
    // The FK-per-child tactic: a business row needs its parent person row.
    assert!(
        catalog
            .insert_named("business", &[("pid", Value::str("b1"))])
            .is_err(),
        "class-table inheritance requires the parent row first"
    );
    catalog
        .insert_named("person", &[("pid", Value::str("b1"))])
        .unwrap(); // parent row for the business
    catalog
        .insert_named("business", &[("pid", Value::str("b1"))])
        .unwrap();
    assert!(
        catalog
            .insert_named(
                "owns",
                &[
                    ("src_pid", Value::str("ghost")),
                    ("dst_pid", Value::str("b1")),
                    ("percentage", Value::Float(0.5)),
                ],
            )
            .is_err(),
        "dangling owner must be rejected"
    );
    catalog
        .insert_named(
            "owns",
            &[
                ("src_pid", Value::str("p1")),
                ("dst_pid", Value::str("b1")),
                ("percentage", Value::Float(0.5)),
            ],
        )
        .unwrap();
    assert_eq!(catalog.row_count("owns").unwrap(), 1);
}

#[test]
fn materialization_then_revalidation_succeeds() {
    // After Algorithm 2 adds CONTROLS edges, the instance still conforms to
    // the PG schema (CONTROLS is declared intensional in the design).
    let schema = simple_ownership_schema().unwrap();
    let pg = translate_to_pg(&schema, PgGeneralizationStrategy::MultiLabel).unwrap();
    let mut data = generate_shareholding(&ShareholdingConfig {
        nodes: 300,
        person_fraction: 0.3,
        ..Default::default()
    })
    .unwrap();
    materialize(
        &mut data,
        &schema,
        CONTROL_METALOG,
        MaterializationMode::Staged,
    )
    .unwrap();
    pg.check_instance(&data).unwrap();
}
