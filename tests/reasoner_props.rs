//! Property tests on the Vadalog engine: transitive closure against a
//! brute-force oracle, chase termination on warded programs, monotonic
//! aggregation against the independent control baseline, and SCC/WCC
//! algorithms against naive reachability.
//!
//! Runs under the in-workspace harness (`kgm_runtime::prop`): 64 seeded
//! cases per property, counterexamples shrunk and reported with the seed.

#![allow(clippy::needless_range_loop)]

use kgm_runtime::prop::{check, shrink_vec, CaseResult, Config};
use kgm_runtime::rng::Rng;
use kgm_runtime::{prop_assert_eq, prop_assume};
use kgmodel::common::Value;
use kgmodel::finance::control::{baseline_control, control_vadalog};
use kgmodel::pgstore::algo::{
    strongly_connected_components, weakly_connected_components, EdgeFilter,
};
use kgmodel::pgstore::{NodeId, PropertyGraph};
use kgmodel::vadalog::{parse_program, Engine, FactDb};
use std::collections::BTreeSet;

fn reachability(n: usize, edges: &[(usize, usize)]) -> BTreeSet<(usize, usize)> {
    // Floyd-Warshall-style closure over at most 10 nodes.
    let mut reach = vec![vec![false; n]; n];
    for &(a, b) in edges {
        reach[a][b] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    for (i, row) in reach.iter().enumerate() {
        for (j, &r) in row.iter().enumerate() {
            if r {
                out.insert((i, j));
            }
        }
    }
    out
}

/// `(n, random pairs)` — the shared input shape of the graph properties.
fn gen_graph(rng: &mut Rng, max_edges: usize) -> (usize, Vec<(usize, usize)>) {
    let n = rng.gen_range(1usize..9);
    let m = rng.gen_range(0usize..max_edges);
    let edges = (0..m)
        .map(|_| (rng.gen_range(0usize..9), rng.gen_range(0usize..9)))
        .collect();
    (n, edges)
}

/// Shrink by dropping edges; the node count stays fixed.
fn shrink_graph(input: &(usize, Vec<(usize, usize)>)) -> Vec<(usize, Vec<(usize, usize)>)> {
    let (n, edges) = input;
    shrink_vec(edges).into_iter().map(|e| (*n, e)).collect()
}

#[test]
fn transitive_closure_matches_floyd_warshall() {
    check(
        "transitive_closure_matches_floyd_warshall",
        &Config::with_cases(64),
        |rng| gen_graph(rng, 20),
        shrink_graph,
        |(n, raw)| -> CaseResult {
            let n = *n;
            let edges: Vec<(usize, usize)> =
                raw.iter().map(|&(a, b)| (a % n, b % n)).collect();
            let program = parse_program(
                "edge(X,Y) -> path(X,Y). path(X,Y), edge(Y,Z) -> path(X,Z).",
            )
            .unwrap();
            let engine = Engine::new(program).unwrap();
            let facts: Vec<Vec<Value>> = edges
                .iter()
                .map(|&(a, b)| vec![Value::Int(a as i64), Value::Int(b as i64)])
                .collect();
            let (db, _) = engine.run_with_facts(&[("edge", facts)]).unwrap();
            let derived: BTreeSet<(usize, usize)> = db
                .facts_iter("path")
                .map(|t| (t[0].as_i64().unwrap() as usize, t[1].as_i64().unwrap() as usize))
                .collect();
            prop_assert_eq!(derived, reachability(n, &edges));
            Ok(())
        },
    );
}

/// The existential rule `b(X) → c(X, N)` must mint exactly one null per
/// ground fact (Skolem chase determinism) and terminate.
#[test]
fn skolem_chase_is_deterministic() {
    check(
        "skolem_chase_is_deterministic",
        &Config::with_cases(64),
        |rng| {
            let m = rng.gen_range(0usize..20);
            (0..m)
                .map(|_| rng.gen_range(0i64..50))
                .collect::<BTreeSet<i64>>()
        },
        |values| {
            let v: Vec<i64> = values.iter().copied().collect();
            shrink_vec(&v)
                .into_iter()
                .map(|w| w.into_iter().collect())
                .collect()
        },
        |values| -> CaseResult {
            let program = parse_program("b(X) -> c(X, N).").unwrap();
            let engine = Engine::new(program).unwrap();
            let facts: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v)]).collect();
            let (db, stats) = engine.run_with_facts(&[("b", facts)]).unwrap();
            prop_assert_eq!(db.len("c"), values.len());
            prop_assert_eq!(stats.nulls_created, values.len());
            // Distinct ground values get distinct nulls.
            let nulls: BTreeSet<u64> = db
                .facts_iter("c")
                .map(|t| t[1].as_oid().unwrap().payload())
                .collect();
            prop_assert_eq!(nulls.len(), values.len());
            Ok(())
        },
    );
}

/// Monotonic-aggregate control agrees with the independent baseline on
/// random weighted ownership graphs.
#[test]
fn control_engine_matches_baseline() {
    check(
        "control_engine_matches_baseline",
        &Config::with_cases(64),
        |rng| {
            let n = rng.gen_range(2usize..9);
            let m = rng.gen_range(0usize..16);
            let edges: Vec<(usize, usize, u32)> = (0..m)
                .map(|_| {
                    (
                        rng.gen_range(0usize..9),
                        rng.gen_range(0usize..9),
                        rng.gen_range(1u32..100),
                    )
                })
                .collect();
            (n, edges)
        },
        |(n, edges)| shrink_vec(edges).into_iter().map(|e| (*n, e)).collect(),
        |(n, edges)| -> CaseResult {
            let n = *n;
            let mut g = PropertyGraph::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    g.add_node(
                        ["Business", "Person"],
                        vec![("pid".to_string(), Value::str(format!("c{i}")))],
                    )
                    .unwrap()
                })
                .collect();
            for &(a, b, w) in edges {
                let (a, b) = (a % n, b % n);
                if a == b {
                    continue;
                }
                g.add_edge(
                    ids[a],
                    ids[b],
                    "OWNS",
                    vec![("percentage".to_string(), Value::Float(w as f64 / 100.0))],
                )
                .unwrap();
            }
            let (engine_pairs, _) = control_vadalog(&g).unwrap();
            prop_assert_eq!(engine_pairs, baseline_control(&g));
            Ok(())
        },
    );
}

/// SCC count + membership agree with brute-force mutual reachability.
#[test]
fn scc_matches_mutual_reachability() {
    check(
        "scc_matches_mutual_reachability",
        &Config::with_cases(64),
        |rng| gen_graph(rng, 18),
        shrink_graph,
        |(n, raw)| -> CaseResult {
            let n = *n;
            let edges: Vec<(usize, usize)> =
                raw.iter().map(|&(a, b)| (a % n, b % n)).collect();
            let mut g = PropertyGraph::new();
            let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(["N"], vec![]).unwrap()).collect();
            for &(a, b) in &edges {
                g.add_edge(ids[a], ids[b], "E", vec![]).unwrap();
            }
            let sccs = strongly_connected_components(&g, &EdgeFilter::all());
            // Oracle: i ≡ j iff i reaches j and j reaches i (or i == j).
            let reach = reachability(n, &edges);
            let same = |i: usize, j: usize| {
                i == j || (reach.contains(&(i, j)) && reach.contains(&(j, i)))
            };
            // Build the expected partition sizes.
            let mut expected: Vec<BTreeSet<usize>> = Vec::new();
            for i in 0..n {
                if expected.iter().any(|c| c.contains(&i)) {
                    continue;
                }
                expected.push((0..n).filter(|&j| same(i, j)).collect());
            }
            let mut got: Vec<BTreeSet<usize>> = sccs
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|id| ids.iter().position(|x| x == id).unwrap())
                        .collect()
                })
                .collect();
            got.sort();
            expected.sort();
            prop_assert_eq!(got, expected);
            Ok(())
        },
    );
}

/// WCC partition matches undirected reachability.
#[test]
fn wcc_matches_undirected_reachability() {
    check(
        "wcc_matches_undirected_reachability",
        &Config::with_cases(64),
        |rng| gen_graph(rng, 14),
        shrink_graph,
        |(n, raw)| -> CaseResult {
            let n = *n;
            let edges: Vec<(usize, usize)> =
                raw.iter().map(|&(a, b)| (a % n, b % n)).collect();
            let mut und: Vec<(usize, usize)> = edges.clone();
            und.extend(edges.iter().map(|&(a, b)| (b, a)));
            let reach = reachability(n, &und);
            let mut g = PropertyGraph::new();
            let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(["N"], vec![]).unwrap()).collect();
            for &(a, b) in &edges {
                g.add_edge(ids[a], ids[b], "E", vec![]).unwrap();
            }
            let comps = weakly_connected_components(&g, &EdgeFilter::all());
            let mut got: Vec<BTreeSet<usize>> = comps
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|id| ids.iter().position(|x| x == id).unwrap())
                        .collect()
                })
                .collect();
            got.sort();
            let mut expected: Vec<BTreeSet<usize>> = Vec::new();
            for i in 0..n {
                if expected.iter().any(|c| c.contains(&i)) {
                    continue;
                }
                expected.push(
                    (0..n)
                        .filter(|&j| i == j || reach.contains(&(i, j)))
                        .collect(),
                );
            }
            expected.sort();
            prop_assert_eq!(got, expected);
            Ok(())
        },
    );
}

// Keep prop_assume linked into at least one suite so the re-export is
// exercised from an integration-test context.
#[test]
fn assume_is_usable_from_integration_tests() {
    check(
        "assume_smoke",
        &Config::with_cases(8),
        |rng| rng.gen_range(0u32..100),
        kgm_runtime::prop::no_shrink,
        |&v| -> CaseResult {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
            Ok(())
        },
    );
}

#[test]
fn stratified_negation_is_deterministic_across_runs() {
    let src = "a(X) -> b(X). c(X), not b(X) -> d(X).";
    let mut outputs = BTreeSet::new();
    for _ in 0..5 {
        let engine = Engine::new(parse_program(src).unwrap()).unwrap();
        let mut db = FactDb::new();
        db.add_facts("a", vec![vec![Value::Int(1)]]).unwrap();
        db.add_facts("c", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        engine.run(&mut db).unwrap();
        outputs.insert(format!("{:?}", db.facts("d")));
    }
    assert_eq!(outputs.len(), 1, "negation must be deterministic");
}
