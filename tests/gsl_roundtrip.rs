//! Property test: GSL emission is the exact inverse of GSL parsing on
//! arbitrary valid super-schemas.

#![allow(clippy::needless_range_loop)]

use kgmodel::core::{parse_gsl, to_gsl};
use kgmodel::core::supermodel::{
    Cardinality, Modifier, SmAttribute, SmEdge, SmGeneralization, SmNode, SuperSchema,
};
use kgm_common::ValueType;
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = ValueType> {
    prop_oneof![
        Just(ValueType::Bool),
        Just(ValueType::Int),
        Just(ValueType::Float),
        Just(ValueType::Str),
        Just(ValueType::Date),
    ]
}

fn arb_attr(name: String, is_id: bool) -> impl Strategy<Value = SmAttribute> {
    (arb_type(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        move |(ty, opt, unique, intensional)| {
            let mut a = SmAttribute::new(name.clone(), ty);
            if is_id {
                a = a.id();
            } else {
                if opt {
                    a = a.opt();
                }
                if intensional && !opt {
                    a = a.intensional();
                }
            }
            if unique {
                a = a.with_modifier(Modifier::Unique);
            }
            a
        },
    )
}

fn arb_schema() -> impl Strategy<Value = SuperSchema> {
    // 2-5 nodes named N0..; node 0 is the hierarchy root, later nodes may be
    // children of earlier ones; 0-4 edges between random nodes.
    (2usize..6).prop_flat_map(|n| {
        let attrs = proptest::collection::vec(
            (0..n).prop_flat_map(move |i| arb_attr(format!("a{i}"), false)),
            0..3,
        );
        let node_attrs = proptest::collection::vec(attrs, n..=n);
        let parents = proptest::collection::vec(proptest::option::of(0usize..n), n..=n);
        let edges = proptest::collection::vec(
            ((0..n), (0..n), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
            0..5,
        );
        (Just(n), node_attrs, parents, edges, any::<bool>()).prop_map(
            |(n, node_attrs, parents, edges, total)| {
                let mut s = SuperSchema::new("P");
                for i in 0..n {
                    let mut attributes = vec![SmAttribute::new(format!("k{i}"), ValueType::Str).id()];
                    for (j, a) in node_attrs[i].iter().enumerate() {
                        let mut a = a.clone();
                        a.name = format!("a{i}_{j}");
                        attributes.push(a);
                    }
                    s.add_node(SmNode {
                        name: format!("N{i}"),
                        is_intensional: false,
                        attributes,
                    });
                }
                // A forest: node i may specialize a node with smaller index.
                // Children must not redeclare identifiers, so drop the own id
                // of child nodes (they inherit the parent's) — but our
                // generator gave each node an id; instead only attach
                // childless generalizations: child keeps its id too, which
                // validation rejects (duplicate ids are fine — ids merge into
                // one identifier set). Check: identifier_of returns both.
                for i in 1..n {
                    if let Some(p) = parents[i] {
                        if p < i {
                            s.add_generalization(SmGeneralization {
                                parent: format!("N{p}"),
                                children: vec![format!("N{i}")],
                                is_total: total,
                                is_disjoint: !total,
                            });
                        }
                    }
                }
                for (k, (f, t, o1, f1, o2, f2)) in edges.into_iter().enumerate() {
                    s.add_edge(SmEdge {
                        name: format!("E{k}"),
                        from: format!("N{f}"),
                        to: format!("N{t}"),
                        is_intensional: k % 2 == 0,
                        from_card: Cardinality { is_opt: o1, is_fun: f1 },
                        to_card: Cardinality { is_opt: o2, is_fun: f2 },
                        attributes: vec![],
                    });
                }
                s
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emit_parse_round_trip(schema in arb_schema()) {
        // Only valid schemas are in scope for the inverse property.
        prop_assume!(schema.validate().is_ok());
        let text = to_gsl(&schema);
        let parsed = parse_gsl(&text)
            .unwrap_or_else(|e| panic!("emitted GSL must parse: {e}\n{text}"));
        prop_assert_eq!(&parsed.nodes, &schema.nodes);
        prop_assert_eq!(&parsed.edges, &schema.edges);
        let mut g1 = schema.generalizations.clone();
        let mut g2 = parsed.generalizations.clone();
        g1.sort_by_key(|a| (a.parent.clone(), a.children.clone()));
        g2.sort_by_key(|a| (a.parent.clone(), a.children.clone()));
        prop_assert_eq!(g1, g2);
    }
}
