//! Property test: GSL emission is the exact inverse of GSL parsing on
//! arbitrary valid super-schemas.
//!
//! Runs under the in-workspace harness (`kgm_runtime::prop`): 64 seeded
//! cases, with the failing seed reported for reproduction.

#![allow(clippy::needless_range_loop)]

use kgm_common::ValueType;
use kgm_runtime::prop::{check, no_shrink, CaseResult, Config};
use kgm_runtime::rng::Rng;
use kgm_runtime::{prop_assert_eq, prop_assume};
use kgmodel::core::supermodel::{
    Cardinality, Modifier, SmAttribute, SmEdge, SmGeneralization, SmNode, SuperSchema,
};
use kgmodel::core::{parse_gsl, to_gsl};

fn gen_type(rng: &mut Rng) -> ValueType {
    match rng.gen_range(0u32..5) {
        0 => ValueType::Bool,
        1 => ValueType::Int,
        2 => ValueType::Float,
        3 => ValueType::Str,
        _ => ValueType::Date,
    }
}

fn gen_attr(rng: &mut Rng, name: String, is_id: bool) -> SmAttribute {
    let ty = gen_type(rng);
    let (opt, unique, intensional) = (rng.gen_bool(0.5), rng.gen_bool(0.5), rng.gen_bool(0.5));
    let mut a = SmAttribute::new(name, ty);
    if is_id {
        a = a.id();
    } else {
        if opt {
            a = a.opt();
        }
        if intensional && !opt {
            a = a.intensional();
        }
    }
    if unique {
        a = a.with_modifier(Modifier::Unique);
    }
    a
}

/// 2-5 nodes named N0..; node 0 is the hierarchy root, later nodes may be
/// children of earlier ones; 0-4 edges between random nodes.
fn gen_schema(rng: &mut Rng) -> SuperSchema {
    let n = rng.gen_range(2usize..6);
    let total = rng.gen_bool(0.5);
    let mut s = SuperSchema::new("P");
    for i in 0..n {
        let mut attributes = vec![SmAttribute::new(format!("k{i}"), ValueType::Str).id()];
        let extra = rng.gen_range(0usize..3);
        for j in 0..extra {
            attributes.push(gen_attr(rng, format!("a{i}_{j}"), false));
        }
        s.add_node(SmNode {
            name: format!("N{i}"),
            is_intensional: false,
            attributes,
        });
    }
    // A forest: node i may specialize a node with smaller index. Ids of the
    // child merge into the parent's identifier set, which validation allows.
    for i in 1..n {
        if rng.gen_bool(0.5) {
            let p = rng.gen_range(0usize..n);
            if p < i {
                s.add_generalization(SmGeneralization {
                    parent: format!("N{p}"),
                    children: vec![format!("N{i}")],
                    is_total: total,
                    is_disjoint: !total,
                });
            }
        }
    }
    let m = rng.gen_range(0usize..5);
    for k in 0..m {
        let (f, t) = (rng.gen_range(0usize..n), rng.gen_range(0usize..n));
        s.add_edge(SmEdge {
            name: format!("E{k}"),
            from: format!("N{f}"),
            to: format!("N{t}"),
            is_intensional: k % 2 == 0,
            from_card: Cardinality {
                is_opt: rng.gen_bool(0.5),
                is_fun: rng.gen_bool(0.5),
            },
            to_card: Cardinality {
                is_opt: rng.gen_bool(0.5),
                is_fun: rng.gen_bool(0.5),
            },
            attributes: vec![],
        });
    }
    s
}

#[test]
fn emit_parse_round_trip() {
    check(
        "emit_parse_round_trip",
        &Config::with_cases(64),
        gen_schema,
        no_shrink,
        |schema| -> CaseResult {
            // Only valid schemas are in scope for the inverse property.
            prop_assume!(schema.validate().is_ok());
            let text = to_gsl(schema);
            let parsed = parse_gsl(&text)
                .unwrap_or_else(|e| panic!("emitted GSL must parse: {e}\n{text}"));
            prop_assert_eq!(&parsed.nodes, &schema.nodes);
            prop_assert_eq!(&parsed.edges, &schema.edges);
            let mut g1 = schema.generalizations.clone();
            let mut g2 = parsed.generalizations.clone();
            g1.sort_by_key(|a| (a.parent.clone(), a.children.clone()));
            g2.sort_by_key(|a| (a.parent.clone(), a.children.clone()));
            prop_assert_eq!(g1, g2);
            Ok(())
        },
    );
}
