//! Property test: MTV's path-pattern compilation (Section 4, step (3))
//! agrees with a brute-force NFA-product evaluation of the regular
//! semi-path semantics on random graphs.
//!
//! The brute force is an independent oracle: the regex is normalized
//! (inverses pushed to the letters), compiled to a Thompson NFA whose
//! letters are (edge label, direction), and the pairs `⟨x, y⟩` connected by
//! a conforming semi-path are found by BFS over the (node, state) product.
//!
//! Runs under the in-workspace harness (`kgm_runtime::prop`): 64 seeded
//! cases, counterexamples shrunk by dropping edges.

use kgm_metalog::ast::{MetaBodyElem, MetaRule, NodeAtom, PathPattern};
use kgm_metalog::{translate, EdgeAtom, MetaProgram, PathRegex, PgSchema};
use kgm_runtime::prop::{check, shrink_vec, CaseResult, Config};
use kgm_runtime::rng::Rng;
use kgm_runtime::{prop_assert, prop_assert_eq};
use kgmodel::common::Value;
use kgmodel::pgstore::{NodeId, PropertyGraph};
use kgmodel::vadalog::{Engine, EngineConfig, FactDb, SourceRegistry};
use std::collections::BTreeSet;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Oracle: Thompson NFA over (label, direction) letters.
// ---------------------------------------------------------------------

/// Push inverses down to the letters: `(S·T)⁻ = T⁻·S⁻`, `(S|T)⁻ = S⁻|T⁻`,
/// `(S*)⁻ = (S⁻)*`.
fn normalize(r: &PathRegex, flipped: bool) -> Vec<NfaRegex> {
    match r {
        PathRegex::Edge(e) => vec![NfaRegex::Letter(
            e.label.clone().expect("labelled"),
            !flipped,
        )],
        PathRegex::Inverse(i) => normalize(i, !flipped),
        PathRegex::Concat(xs) => {
            let mut parts: Vec<Vec<NfaRegex>> =
                xs.iter().map(|x| normalize(x, flipped)).collect();
            if flipped {
                parts.reverse();
            }
            vec![NfaRegex::Concat(
                parts.into_iter().map(NfaRegex::seq).collect(),
            )]
        }
        PathRegex::Alt(xs) => vec![NfaRegex::Alt(
            xs.iter().map(|x| NfaRegex::seq(normalize(x, flipped))).collect(),
        )],
        PathRegex::Star(i) => vec![NfaRegex::Star(Box::new(NfaRegex::seq(normalize(
            i, flipped,
        ))))],
    }
}

#[derive(Debug, Clone)]
enum NfaRegex {
    Letter(String, bool), // label, forward?
    Concat(Vec<NfaRegex>),
    Alt(Vec<NfaRegex>),
    Star(Box<NfaRegex>),
}

impl NfaRegex {
    fn seq(mut v: Vec<NfaRegex>) -> NfaRegex {
        if v.len() == 1 {
            v.pop().unwrap()
        } else {
            NfaRegex::Concat(v)
        }
    }
}

#[derive(Default)]
struct Nfa {
    eps: Vec<Vec<usize>>,
    steps: Vec<Vec<(String, bool, usize)>>,
}

impl Nfa {
    fn state(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        self.eps.len() - 1
    }

    fn build(&mut self, r: &NfaRegex) -> (usize, usize) {
        match r {
            NfaRegex::Letter(l, fwd) => {
                let s = self.state();
                let t = self.state();
                self.steps[s].push((l.clone(), *fwd, t));
                (s, t)
            }
            NfaRegex::Concat(xs) => {
                let (mut s, mut t) = (usize::MAX, usize::MAX);
                for x in xs {
                    let (xs_, xt) = self.build(x);
                    if s == usize::MAX {
                        s = xs_;
                    } else {
                        self.eps[t].push(xs_);
                    }
                    t = xt;
                }
                (s, t)
            }
            NfaRegex::Alt(xs) => {
                let s = self.state();
                let t = self.state();
                for x in xs {
                    let (xs_, xt) = self.build(x);
                    self.eps[s].push(xs_);
                    self.eps[xt].push(t);
                }
                (s, t)
            }
            NfaRegex::Star(i) => {
                let s = self.state();
                let t = self.state();
                let (is, it) = self.build(i);
                self.eps[s].push(is);
                self.eps[s].push(t);
                self.eps[it].push(is);
                self.eps[it].push(t);
                (s, t)
            }
        }
    }
}

/// All `(x, y)` pairs connected by a semi-path conforming to `regex`.
fn brute_force_pairs(g: &PropertyGraph, regex: &PathRegex) -> BTreeSet<(u64, u64)> {
    let normalized = NfaRegex::seq(normalize(regex, false));
    let mut nfa = Nfa::default();
    let (start, accept) = nfa.build(&normalized);
    let nodes: Vec<NodeId> = g.nodes().collect();
    let mut out = BTreeSet::new();
    for &x in &nodes {
        // BFS over (node, state) with ε-closure.
        let mut seen: BTreeSet<(u32, usize)> = BTreeSet::new();
        let mut stack = vec![(x, start)];
        while let Some((n, q)) = stack.pop() {
            if !seen.insert((n.0, q)) {
                continue;
            }
            if q == accept {
                out.insert((g.node_oid(x).payload(), g.node_oid(n).payload()));
            }
            for &e in &nfa.eps[q] {
                stack.push((n, e));
            }
            for (label, fwd, to) in nfa.steps[q].clone() {
                for edge in g.incident_edges(
                    n,
                    if fwd {
                        kgmodel::pgstore::Direction::Outgoing
                    } else {
                        kgmodel::pgstore::Direction::Incoming
                    },
                ) {
                    if g.edge_label(edge) != label {
                        continue;
                    }
                    let (f, t) = g.edge_endpoints(edge);
                    let next = if fwd { t } else { f };
                    stack.push((next, to));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// The MTV + engine route.
// ---------------------------------------------------------------------

fn mtv_pairs(g: Arc<PropertyGraph>, regex: &PathRegex) -> Result<BTreeSet<(u64, u64)>, String> {
    let mut catalog = PgSchema::new();
    catalog
        .declare_node("N", Vec::<String>::new())
        .declare_edge("A", Vec::<String>::new())
        .declare_edge("B", Vec::<String>::new())
        .declare_edge("RESULT", Vec::<String>::new());
    let rule = MetaRule {
        body: vec![MetaBodyElem::Path(PathPattern {
            src: NodeAtom {
                var: Some("x".into()),
                label: Some("N".into()),
                props: vec![],
            },
            segments: vec![(
                regex.clone(),
                NodeAtom {
                    var: Some("y".into()),
                    label: Some("N".into()),
                    props: vec![],
                },
            )],
        })],
        head: vec![PathPattern {
            src: NodeAtom {
                var: Some("x".into()),
                label: None,
                props: vec![],
            },
            segments: vec![(
                PathRegex::Edge(EdgeAtom {
                    var: Some("e".into()),
                    label: Some("RESULT".into()),
                    props: vec![],
                }),
                NodeAtom {
                    var: Some("y".into()),
                    label: None,
                    props: vec![],
                },
            )],
        }],
    };
    let program = MetaProgram { rules: vec![rule] };
    let out = translate(&program, &catalog, "g").map_err(|e| e.to_string())?;
    let engine =
        Engine::with_config(out.program, EngineConfig::default()).map_err(|e| e.to_string())?;
    let mut registry = SourceRegistry::new();
    registry.add_graph("g", g);
    let mut db = FactDb::new();
    engine
        .load_inputs(&registry, &mut db)
        .map_err(|e| e.to_string())?;
    engine.run(&mut db).map_err(|e| e.to_string())?;
    Ok(db
        .facts_iter("RESULT")
        .filter_map(|t| {
            Some((
                t[1].as_oid()?.payload(),
                t[2].as_oid()?.payload(),
            ))
        })
        .collect())
}

// ---------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------

fn gen_letter(rng: &mut Rng) -> PathRegex {
    let l = if rng.gen_bool(0.5) { "A" } else { "B" };
    PathRegex::Edge(EdgeAtom {
        var: None,
        label: Some(l.to_string()),
        props: vec![],
    })
}

/// Weighted like the original strategy: 3× letter, 1× each combinator.
fn gen_regex(rng: &mut Rng, depth: u32) -> PathRegex {
    if depth == 0 {
        return gen_letter(rng);
    }
    match rng.gen_range(0u32..7) {
        0..=2 => gen_letter(rng),
        3 => PathRegex::Inverse(Box::new(gen_regex(rng, depth - 1))),
        4 => PathRegex::Concat(vec![gen_regex(rng, depth - 1), gen_regex(rng, depth - 1)]),
        5 => PathRegex::Alt(vec![gen_regex(rng, depth - 1), gen_regex(rng, depth - 1)]),
        _ => PathRegex::Star(Box::new(gen_regex(rng, depth - 1))),
    }
}

type Case = (usize, Vec<(usize, usize, bool)>, PathRegex);

fn gen_case(rng: &mut Rng) -> Case {
    let n = rng.gen_range(2usize..7);
    let m = rng.gen_range(0usize..14);
    let edges = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_bool(0.5)))
        .collect();
    (n, edges, gen_regex(rng, 2))
}

/// Shrink by dropping graph edges; the regex and node count stay fixed.
fn shrink_case(input: &Case) -> Vec<Case> {
    let (n, edges, regex) = input;
    shrink_vec(edges)
        .into_iter()
        .map(|e| (*n, e, regex.clone()))
        .collect()
}

fn build_graph(n: usize, edges: &[(usize, usize, bool)]) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            g.add_node(["N"], vec![("i".to_string(), Value::Int(i as i64))])
                .unwrap()
        })
        .collect();
    for &(f, t, is_a) in edges {
        g.add_edge(ids[f], ids[t], if is_a { "A" } else { "B" }, vec![])
            .unwrap();
    }
    g
}

/// The Section 4 step-(3) translation is semantics-preserving.
#[test]
fn mtv_path_patterns_match_brute_force() {
    check(
        "mtv_path_patterns_match_brute_force",
        &Config::with_cases(64),
        gen_case,
        shrink_case,
        |(n, edges, regex)| -> CaseResult {
            let g = build_graph(*n, edges);
            let expected = brute_force_pairs(&g, regex);
            match mtv_pairs(Arc::new(g), regex) {
                Ok(actual) => prop_assert_eq!(actual, expected),
                // The only legal rejection is the documented unsupported shape:
                // a nullable sub-pattern inside a concatenation.
                Err(e) => prop_assert!(
                    e.contains("nullable"),
                    "unexpected translation failure: {}",
                    e
                ),
            }
            Ok(())
        },
    );
}

#[test]
fn concrete_star_of_inverse_pair() {
    // A regression-style fixed case: ([A]⁻ · [B])* over a small cycle.
    let mut g = PropertyGraph::new();
    let a = g.add_node(["N"], vec![]).unwrap();
    let b = g.add_node(["N"], vec![]).unwrap();
    let c = g.add_node(["N"], vec![]).unwrap();
    g.add_edge(b, a, "A", vec![]).unwrap(); // a ←A– b, traversed A⁻: a→b
    g.add_edge(b, c, "B", vec![]).unwrap(); // b –B→ c
    let regex = PathRegex::Star(Box::new(PathRegex::Concat(vec![
        PathRegex::Inverse(Box::new(PathRegex::Edge(EdgeAtom {
            var: None,
            label: Some("A".into()),
            props: vec![],
        }))),
        PathRegex::Edge(EdgeAtom {
            var: None,
            label: Some("B".into()),
            props: vec![],
        }),
    ])));
    let expected = brute_force_pairs(&g, &regex);
    let actual = mtv_pairs(Arc::new(g), &regex).unwrap();
    assert_eq!(actual, expected);
    // a →(A⁻) b →(B) c is one round of the star; plus all the ε pairs.
    assert!(expected.len() >= 4);
}
