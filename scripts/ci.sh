#!/usr/bin/env bash
# Offline CI for the hermetic workspace.
#
# 1. Guard: no workspace manifest may depend on anything outside the
#    workspace (all deps must be kgm-* path crates).
# 2. Build + test fully offline — proves an empty cargo registry suffices.
# 3. Observability smoke: a profiled harness run must produce a valid JSON
#    run report and refresh the repo-root BENCH_*.json perf trajectory.
# 4. Why-provenance gates: provenance-on output bit-identical to
#    provenance-off at 1 and 4 threads, derivation trees sound + grounded
#    against the naive oracle, recording overhead under 2x.
# 5. Incremental-maintenance gates: Engine::apply_update matches the
#    from-scratch chase at 1 and 4 threads (fixed smoke plus fuzzed
#    differential runs), and a single update stays under 10% of a full
#    re-materialization in the refreshed bench rows.
# 6. Serving gates: fixed-seed snapshot-consistency schedules at 1 and 4
#    reader threads, the pin-stability/plan-cache/termination stress suite,
#    and a BENCH_serving.json refresh with a no-global-lock throughput gate
#    (4-reader batch time <= 1.10x the 1-reader batch).
#
# Usage: scripts/ci.sh [--skip-tests]
#
# KGM_SCALE_SMOKE=1 additionally runs a 100k-node registry chase and
# requires the 1-thread and 8-thread outputs to be identical (adds ~2s).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency guard =="
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Collect dependency names from every [*dependencies*] table of the
    # manifest: section lines like `[dependencies]`, `[dev-dependencies]`,
    # `[target.'cfg(..)'.dependencies]`, then `name = ...` entries until the
    # next section.
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) ; next }
        in_deps && /^[A-Za-z0-9_-]+[ \t]*=/ {
            name = $1
            sub(/[ \t]*=.*/, "", name)
            if (name !~ /^kgm[-_]/ && name != "kgmodel") print name
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "ERROR: $manifest declares non-workspace dependencies:" >&2
        echo "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "The workspace must stay hermetic (kgm-* crates only)." >&2
    exit 1
fi
echo "ok: all dependencies are workspace-internal"

echo "== cargo tree (must contain only kgm-* crates) =="
if command -v cargo >/dev/null; then
    foreign=$(cargo tree --offline --workspace --prefix none 2>/dev/null \
        | awk '{print $1}' | sort -u | grep -v '^kgm' | grep -v '^kgmodel' || true)
    if [ -n "$foreign" ]; then
        echo "ERROR: cargo resolved non-workspace crates:" >&2
        echo "$foreign" | sed 's/^/    /' >&2
        exit 1
    fi
    echo "ok: dependency graph is workspace-only"
fi

echo "== offline build =="
cargo build --release --offline --workspace

if [ "${1:-}" != "--skip-tests" ]; then
    echo "== offline tests =="
    cargo test -q --offline --workspace
fi

echo "== chaos smoke =="
# Two resilience probes against the release harness binary (built above).
# This runs *before* the observability smoke so the clean profiled run
# below regenerates the BENCH_*.json perf trajectory without the
# truncated-chase timings these probes produce.
#
# 1. A zero deadline must degrade gracefully: exit 0, partial results, and
#    a `chase.termination.deadline` counter in the run report — never an
#    abort or a panic.
# 2. A certain injected fault (`KGM_FAULT=<site>:1.0:<seed>`) must surface
#    as a structured error on stderr with exit code 1 — never an abort
#    (which would exit 101/134) or silent success.
harness=target/release/paper-harness
chaos_report=target/paper-artifacts/run_report_e7.json
rm -f "$chaos_report"
KGM_DEADLINE_MS=0 "$harness" e7 150 --profile >/dev/null
if ! grep -q '"chase.termination.deadline"' "$chaos_report"; then
    echo "ERROR: zero-deadline run report lacks chase.termination.deadline" >&2
    exit 1
fi
set +e
fault_err=$(KGM_FAULT=chase.insert:1.0:7 "$harness" e7 150 2>&1 >/dev/null)
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
    echo "ERROR: injected chase.insert fault exited $rc (want 1)" >&2
    exit 1
fi
case "$fault_err" in
    *"injected fault at chase.insert"*) ;;
    *)
        echo "ERROR: fault run stderr lacks the injected-fault message:" >&2
        echo "$fault_err" | sed 's/^/    /' >&2
        exit 1
        ;;
esac
echo "ok: deadline degrades gracefully; injected faults fail structurally"

echo "== differential conformance smoke =="
# Fixed-seed differential run: row-oriented naive oracle vs the columnar
# engine, with the engine forced through both the sequential and the
# sharded-parallel path (the suite itself compares 1/2/8 worker threads per
# case; the KGM_THREADS values exercise both defaults of the ambient
# config).
for threads in 1 4; do
    KGM_PROP_SEED=20220046 KGM_PROP_CASES=64 KGM_THREADS=$threads \
        cargo test --release --offline -q -p kgm-vadalog \
        --test differential >/dev/null
done
echo "ok: 64-case fixed-seed differential run agrees at 1 and 4 threads"

echo "== frozen goldens =="
# Goldens must match byte-for-byte; KGM_GOLDEN_FROZEN forbids blessing and
# turns a missing golden file into a failure.
KGM_GOLDEN_FROZEN=1 cargo test --release --offline -q \
    -p kgm-metalog --test golden_mtv >/dev/null
KGM_GOLDEN_FROZEN=1 cargo test --release --offline -q \
    -p kgm-core --test golden_sst >/dev/null
KGM_GOLDEN_FROZEN=1 cargo test --release --offline -q \
    -p kgm-finance --test golden_explain >/dev/null
echo "ok: MTV + SSST + explanation goldens match byte-for-byte"

echo "== why-provenance smoke =="
# Provenance must be a pure sidecar: the provenance-on chase at 1 and 4
# worker threads produces the exact fact set (digest, derived-fact count,
# null count) of the provenance-off baseline, with identical edge counts —
# paper-harness exits non-zero on any divergence. A fixed-seed run of the
# explanations suite then checks, against the independent naive oracle,
# that every derivation tree is sound and grounded (the suite itself runs
# each case at 1 and 4 threads).
"$harness" prov-smoke 1000
KGM_PROP_SEED=20220046 KGM_PROP_CASES=48 cargo test --release --offline -q \
    -p kgm-vadalog --test explanations >/dev/null
echo "ok: provenance-on facts bit-identical at 1 and 4 threads; trees sound + grounded"

echo "== incremental maintenance smoke =="
# A fixed incorporation + shareholding retraction applied through
# Engine::apply_update must reproduce the from-scratch control relation
# (order-independent digest) at 1 and 4 worker threads without taking the
# rebuild fallback — paper-harness exits non-zero otherwise. A fixed-seed
# run of the incremental differential suite then checks the full contract:
# fuzzed update sequences, verified against the naive oracle after every
# batch, with the provenance-off variant forced through the rebuild path.
"$harness" update 2000
for threads in 1 4; do
    KGM_PROP_SEED=20220046 KGM_PROP_CASES=48 KGM_THREADS=$threads \
        cargo test --release --offline -q -p kgm-vadalog \
        --test incremental >/dev/null
done
echo "ok: incremental updates match from-scratch at 1 and 4 threads"

echo "== serving smoke =="
# Fixed-seed snapshot-consistency runs: 32 fuzzed writer/reader schedules
# per variant (provenance on + off), every reader observation required to be
# exactly some published epoch's fact set per the naive oracle. CI pins the
# reader width to 1 and then 4 (the suite's own default additionally covers
# 8); the stress suite then pins an epoch across 120 live update batches,
# proves plan-cache hits bit-identical to cold plans, and checks the
# partial-result (Termination) marker on truncated epochs.
for readers in 1 4; do
    KGM_PROP_SEED=20220046 KGM_PROP_CASES=32 KGM_SERVE_READERS=$readers \
        cargo test --release --offline -q -p kgm-vadalog \
        --test serving >/dev/null
done
KGM_PROP_SEED=20220046 KGM_PROP_CASES=32 cargo test --release --offline -q \
    -p kgm-vadalog --test serving_stress >/dev/null
echo "ok: 32-schedule consistency runs agree at 1 and 4 readers; pins stable, caches cold per epoch"

# Serving throughput gate: refresh BENCH_serving.json (mixed
# point/aggregate/path/cypher batches against pinned epochs, concurrent
# with a live incorporation-update stream) and require the 4-reader batch
# not to be slower than the 1-reader batch — a global lock across readers
# would show up as a multiple here. median_ns is compared (the workload
# drifts as the writer grows the registry, so min is the noisy statistic
# for once), with 1.10x headroom for single-core scheduler noise: this
# runner has one core, so the gate is about lock-freedom, not speedup —
# though shared per-epoch projections make 4 readers genuinely faster even
# here.
rm -f BENCH_serving.json
"$harness" serve-bench 2000 4096
cargo run --release --offline -q -p kgm-bench --bin paper-harness -- \
    validate-json BENCH_serving.json
serve_ratio=$(awk '
    /"group": "serving\/mixed_t1",/ {
        split($0, a, /"median_ns": /); split(a[2], b, ","); t1 = b[1]
    }
    /"group": "serving\/mixed_t4",/ {
        split($0, a, /"median_ns": /); split(a[2], b, ","); t4 = b[1]
    }
    END {
        if (t1 + 0 == 0 || t4 + 0 == 0) { print "missing"; exit }
        printf "%.2f", t4 / t1
    }
' BENCH_serving.json)
if [ "$serve_ratio" = "missing" ]; then
    echo "ERROR: BENCH_serving.json lacks the serving/mixed_t1 and mixed_t4 rows" >&2
    exit 1
fi
if ! awk -v r="$serve_ratio" 'BEGIN { exit !(r <= 1.10) }'; then
    echo "ERROR: 4-reader serving batch is ${serve_ratio}x the 1-reader batch (> 1.10:" \
        "readers are serializing)" >&2
    exit 1
fi
echo "ok: 4-reader serving throughput >= 1-reader (batch ratio ${serve_ratio}x)"

echo "== observability smoke =="
rm -f BENCH_chase.json BENCH_control_pipeline.json \
    target/paper-artifacts/run_report_e7.json
KGM_LOG=summary cargo run --release --offline -q -p kgm-bench \
    --bin paper-harness -- e7 150 --profile >/dev/null
for f in target/paper-artifacts/run_report_e7.json \
    BENCH_chase.json BENCH_control_pipeline.json; do
    if [ ! -f "$f" ]; then
        echo "ERROR: profiled run did not produce $f" >&2
        exit 1
    fi
done
cargo run --release --offline -q -p kgm-bench --bin paper-harness -- \
    validate-json target/paper-artifacts/run_report_e7.json \
    BENCH_chase.json BENCH_control_pipeline.json
echo "ok: run report + BENCH mirrors written and valid"

# Provenance overhead gate: the refresh wrote the 400-company chase with
# and without ProvStore recording; the prov row must stay under 2x the
# plain row. min_ns is compared — the least noisy statistic a 5-sample
# in-process bench produces.
overhead=$(awk '
    /"group": "chase\/control_vadalog",/ {
        split($0, a, /"min_ns": /); split(a[2], b, ","); plain = b[1]
    }
    /"group": "chase\/control_vadalog_prov",/ {
        split($0, a, /"min_ns": /); split(a[2], b, ","); prov = b[1]
    }
    END {
        if (plain + 0 == 0 || prov + 0 == 0) { print "missing"; exit }
        printf "%.2f", prov / plain
    }
' BENCH_chase.json)
if [ "$overhead" = "missing" ]; then
    echo "ERROR: BENCH_chase.json lacks the control_vadalog/control_vadalog_prov rows" >&2
    exit 1
fi
if ! awk -v r="$overhead" 'BEGIN { exit !(r < 2.0) }'; then
    echo "ERROR: provenance overhead ${overhead}x exceeds the 2x contract" >&2
    exit 1
fi
echo "ok: provenance-on chase is ${overhead}x the plain chase (< 2x)"

# Incremental-maintenance gate: the refresh also wrote a full provenance-on
# materialization and a single incorporation update against the same
# registry; the update row must stay under 10% of the full-chase row, or
# incremental maintenance has stopped paying for itself.
ratio=$(awk '
    /"group": "chase\/control_vadalog_full",/ {
        split($0, a, /"min_ns": /); split(a[2], b, ","); full = b[1]
    }
    /"group": "chase\/control_vadalog_update",/ {
        split($0, a, /"min_ns": /); split(a[2], b, ","); upd = b[1]
    }
    END {
        if (full + 0 == 0 || upd + 0 == 0) { print "missing"; exit }
        printf "%.4f", upd / full
    }
' BENCH_chase.json)
if [ "$ratio" = "missing" ]; then
    echo "ERROR: BENCH_chase.json lacks the control_vadalog_full/control_vadalog_update rows" >&2
    exit 1
fi
if ! awk -v r="$ratio" 'BEGIN { exit !(r < 0.10) }'; then
    echo "ERROR: incremental update costs ${ratio}x of a full chase (>= 0.10)" >&2
    exit 1
fi
echo "ok: a single update costs ${ratio}x of a full re-materialization (< 0.10)"

if [ "${KGM_SCALE_SMOKE:-0}" = "1" ]; then
    echo "== registry-scale smoke (KGM_SCALE_SMOKE=1) =="
    # 100k-node shareholding graph through the company-control chase at
    # 1 vs 8 worker threads; paper-harness exits non-zero unless the two
    # runs produce identical control relations (order-independent digest),
    # derived-fact counts, and null counts. This is the partitioned-merge
    # determinism gate at a scale the unit suites never reach.
    "$harness" scale-smoke 100000
    echo "ok: 100k-node chase output identical at 1 and 8 threads"
fi

echo "== parallel chase determinism smoke =="
# The sharded chase guarantees bit-identical output for any KGM_THREADS;
# cross-check the derived-fact counter of the E7 pipeline's own chase span
# (the first `chase.run` in the report — the global `chase.facts_derived`
# counter also accumulates the BENCH refresh, whose adaptive iteration
# count varies with wall-clock, so it is not comparable across runs).
report=target/paper-artifacts/run_report_e7.json
derived() {
    # Every stage reads its input to EOF (no head/early-exit) so no stage
    # takes a SIGPIPE, which pipefail would turn into a spurious CI failure.
    grep -o '"name": "chase.run"[^[]*' "$report" \
        | grep -o '"derived": [0-9]*' | awk 'NR == 1 { print $2 }'
}
KGM_LOG=summary KGM_THREADS=1 cargo run --release --offline -q -p kgm-bench \
    --bin paper-harness -- e7 150 --profile >/dev/null
t1=$(derived)
KGM_LOG=summary KGM_THREADS=4 cargo run --release --offline -q -p kgm-bench \
    --bin paper-harness -- e7 150 --profile >/dev/null
t4=$(derived)
if [ -z "$t1" ] || [ -z "$t4" ]; then
    echo "ERROR: run report lacks the chase.facts_derived counter" >&2
    exit 1
fi
if [ "$t1" != "$t4" ]; then
    echo "ERROR: sharded chase diverged: $t1 derived facts at KGM_THREADS=1" \
        "vs $t4 at KGM_THREADS=4" >&2
    exit 1
fi
echo "ok: KGM_THREADS=1 and KGM_THREADS=4 both derive $t1 facts"

echo "ci: all checks passed"
